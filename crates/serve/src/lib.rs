//! # nai-serve — online inference service for NAI
//!
//! The paper motivates node-adaptive propagation with *online*
//! inference: nodes arrive as requests and must be answered within a
//! latency budget. [`nai_stream::StreamingEngine`] supplies the
//! per-arrival algorithm; this crate supplies the serving system around
//! it, std-only (the workspace has no crates.io access):
//!
//! * [`service::NaiService`] — a **dynamic micro-batcher** (requests
//!   coalesce until `max_batch` or a `max_wait` deadline — the Fig. 5
//!   batch-size/latency trade-off as a runtime policy) feeding a
//!   **worker pool** of engine replicas kept convergent by **sequenced
//!   mutation replication**: every ingest/edge arrival is stamped with
//!   a monotonic sequence number, validated once, and broadcast to
//!   every replica, which applies its batch's mutation prefix in
//!   sequence order before serving reads — so any replica answers any
//!   node and clients never route; **admission control** rejects work
//!   beyond a bounded in-flight cap with a typed `Overloaded` (never a
//!   hang), and a **load-shed policy** lowers the NAP depth budget
//!   under queue pressure — the paper's accuracy↔latency dial driven
//!   by load;
//! * [`cache::PredictionCache`] — an opt-in sequence-versioned
//!   prediction cache: repeat reads of unchanged nodes are answered at
//!   submit time without touching a replica, and every sequenced
//!   mutation invalidates exactly the k-hop neighborhood it could have
//!   changed (full flush when the frontier blows its budget or the NAP
//!   mode depends on global state). Hits are bit-identical to a
//!   cache-bypass run at the same sequence point; degraded (load-shed)
//!   answers are never cached;
//! * [`http::Server`] — a minimal HTTP/1.1 transport over
//!   [`std::net::TcpListener`] with newline-JSON bodies (`POST /v1`)
//!   plus `/healthz`, `/metrics` (merged p50/p95/p99, queue depth,
//!   shed count, per-stage MACs), and `/shutdown`;
//! * [`proto`] / [`json`] — the wire protocol and the vendored JSON it
//!   rides on;
//! * [`client::HttpClient`] — the tiny blocking client used by
//!   `nai loadgen` and the end-to-end tests;
//! * [`workload`] — [`WorkloadSpec`] traffic shapes (read/mutation mix,
//!   Zipf vs. uniform node sampling, open-loop bursts) and the shared
//!   [`WorkloadSampler`] that `nai loadgen` and the `nai bench`
//!   scenario matrix both draw their op streams from.
//!
//! ```text
//! clients ──HTTP──▶ Server ──submit──▶ NaiService ──batches──▶ shard engines
//! ```
//!
//! Correctness contract (checked in the workspace's
//! `tests/serve_end_to_end.rs` and `tests/replica_convergence.rs`):
//! for a closed-loop request sequence — mutations and reads freely
//! interleaved, dispatched round-robin over any number of shards with
//! no routing hints — replies are identical to a single-threaded
//! [`nai_stream::StreamingEngine`] fed the same sequence, and after a
//! drain every replica holds the identical graph.

pub mod admission;
pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod obs;
pub mod proto;
pub mod reactor;
pub mod service;
pub mod sync;
pub mod workload;

pub use admission::AdmissionLedger;
pub use cache::{CacheCounters, Invalidation, PredictionCache, VersionedCache};
pub use client::{http_call, HttpClient};
pub use http::{ConnGate, Server};
pub use json::Json;
pub use obs::ServeObs;
pub use proto::{NodeResult, Op, Reply, Request};
pub use reactor::TransportConfig;
pub use service::{
    CompletionQueue, MacsCell, MetricsSnapshot, NaiService, ServeError, ServiceInfo, Submitted,
    Ticket,
};
pub use workload::{zipf_rank, Arrivals, Sampling, WorkloadSampler, WorkloadSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Arc;
    use nai_core::config::{CacheConfig, InferenceConfig, LoadShedPolicy, ServeConfig};
    use nai_models::{DepthClassifier, ModelKind};
    use nai_stream::{DynamicGraph, StreamingEngine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    const F: usize = 6;
    const K: usize = 2;
    const CLASSES: usize = 3;

    /// An untrained (random-weight) deployment — serving correctness
    /// tests only need *deterministic* classifiers, not accurate ones,
    /// and skipping the training pipeline keeps these tests fast.
    fn engine_shards(n_nodes: usize, n_shards: usize, seed: u64) -> Vec<StreamingEngine> {
        let g = nai_graph::generators::generate(
            &nai_graph::generators::GeneratorConfig {
                num_nodes: n_nodes,
                num_classes: CLASSES,
                feature_dim: F,
                avg_degree: 5.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let seed_graph = DynamicGraph::from_graph(&g);
        (0..n_shards)
            .map(|_| {
                // Re-seeded per shard: every replica (and the oracle the
                // tests peel off) gets bit-identical weights.
                let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A55);
                let classifiers: Vec<DepthClassifier> = (1..=K)
                    .map(|d| {
                        DepthClassifier::new(ModelKind::Sgc, d, F, CLASSES, &[8], 0.0, &mut rng)
                    })
                    .collect();
                StreamingEngine::with_lambda2(seed_graph.clone(), classifiers, None, 0.5, 0.9)
            })
            .collect()
    }

    fn serve_cfg(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_cap: 64,
            shed: LoadShedPolicy {
                trigger_fraction: 1.0,
                t_max_cap: 0, // shedding off unless a test turns it on
            },
            cache: CacheConfig::off(),
        }
    }

    fn infer_cfg() -> InferenceConfig {
        InferenceConfig::distance(0.5, 1, K)
    }

    #[test]
    fn infer_matches_direct_engine() {
        let mut shards = engine_shards(80, 2, 7);
        let mut oracle = shards.pop().unwrap(); // same weights as shard 0/1
        let service = NaiService::new(shards, infer_cfg(), serve_cfg(1)).unwrap();
        let nodes: Vec<u32> = vec![0, 13, 55, 7];
        let expected = oracle.infer_nodes(&nodes, &infer_cfg());
        match service
            .call(Request {
                op: Op::Infer {
                    nodes: nodes.clone(),
                },
                shard: Some(0),
            })
            .unwrap()
        {
            Reply::Infer {
                shard,
                applied_seq,
                results,
            } => {
                assert_eq!(shard, 0);
                assert_eq!(applied_seq, 0, "no mutations sequenced yet");
                let got: Vec<(usize, usize)> =
                    results.iter().map(|r| (r.prediction, r.depth)).collect();
                assert_eq!(got, expected);
                assert_eq!(results.iter().map(|r| r.node).collect::<Vec<_>>(), nodes);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn ingest_matches_ingest_flush_oracle() {
        let mut shards = engine_shards(60, 2, 11);
        let mut oracle = shards.pop().unwrap();
        let service = NaiService::new(shards, infer_cfg(), serve_cfg(1)).unwrap();
        let features = vec![0.25f32; F];
        let neighbors = vec![3u32, 9, 9];
        let oid = oracle.ingest(&features, &neighbors);
        let opred = oracle.flush(&infer_cfg());
        match service
            .call(Request {
                op: Op::Ingest {
                    features,
                    neighbors,
                },
                shard: Some(0),
            })
            .unwrap()
        {
            Reply::Ingest {
                shard,
                applied_seq,
                node,
                prediction,
                depth,
            } => {
                assert_eq!(shard, 0);
                assert_eq!(applied_seq, 1, "first sequenced mutation");
                assert_eq!(node, oid);
                assert_eq!(prediction, opred[0].prediction);
                assert_eq!(depth, opred[0].depth);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn observe_edge_dedups_and_validates() {
        let shards = engine_shards(30, 1, 3);
        let service = NaiService::new(shards, infer_cfg(), serve_cfg(1)).unwrap();
        let find_missing = |service: &NaiService| -> (u32, u32) {
            // Edge (0, v) for some v not adjacent to 0: probe via replies.
            for v in 1..30u32 {
                if let Reply::Edge { added: true, .. } = service
                    .call(Request {
                        op: Op::ObserveEdge { u: 0, v },
                        shard: Some(0),
                    })
                    .unwrap()
                {
                    return (0, v);
                }
            }
            panic!("node 0 adjacent to everything");
        };
        let (u, v) = find_missing(&service);
        // Second observation of the same edge: not added.
        match service
            .call(Request {
                op: Op::ObserveEdge { u, v },
                shard: Some(0),
            })
            .unwrap()
        {
            Reply::Edge { added, .. } => assert!(!added),
            other => panic!("unexpected reply {other:?}"),
        }
        // Validation failures come back as per-op errors, not panics.
        for bad in [
            Op::ObserveEdge { u: 5, v: 5 },
            Op::ObserveEdge { u: 0, v: 999 },
            Op::Infer { nodes: vec![999] },
            Op::Ingest {
                features: vec![0.0; F + 1],
                neighbors: vec![],
            },
            Op::Ingest {
                features: vec![0.0; F],
                neighbors: vec![999],
            },
            Op::Ingest {
                features: vec![f32::INFINITY; F],
                neighbors: vec![],
            },
        ] {
            match service
                .call(Request {
                    op: bad,
                    shard: Some(0),
                })
                .unwrap()
            {
                Reply::Error { .. } => {}
                other => panic!("expected per-op error, got {other:?}"),
            }
        }
        assert_eq!(service.metrics().op_errors, 6);
    }

    #[test]
    fn replicated_ingests_assign_global_ids_any_replica_serves_them() {
        let shards = engine_shards(40, 3, 5);
        let service = NaiService::new(shards, infer_cfg(), serve_cfg(3)).unwrap();
        let mut answerers = Vec::new();
        for i in 0..6u32 {
            match service
                .call(Request {
                    op: Op::Ingest {
                        features: vec![0.1; F],
                        neighbors: vec![0],
                    },
                    shard: None,
                })
                .unwrap()
            {
                Reply::Ingest {
                    shard,
                    applied_seq,
                    node,
                    ..
                } => {
                    answerers.push(shard);
                    // Sequenced replication: ids are globally
                    // sequential whatever replica answers.
                    assert_eq!(node, 40 + i);
                    assert_eq!(applied_seq, (i + 1) as u64);
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        // Closed-loop round-robin spreads the answering work.
        for s in 0..3 {
            assert!(
                answerers.contains(&s),
                "shard {s} never answered: {answerers:?}"
            );
        }
        // Read-your-writes on *every* replica: each ingested id is in
        // range and served by each shard when pinned via the hint.
        for s in 0..3 {
            match service
                .call(Request {
                    op: Op::Infer {
                        nodes: vec![40, 43, 45],
                    },
                    shard: Some(s),
                })
                .unwrap()
            {
                Reply::Infer {
                    shard,
                    applied_seq,
                    results,
                } => {
                    assert_eq!(shard, s, "hint honored");
                    assert_eq!(applied_seq, 6);
                    assert_eq!(results.len(), 3);
                }
                other => panic!("replica {s} failed the replicated read: {other:?}"),
            }
        }
        // Replicas drained into identical graphs.
        let engines = service.into_engines();
        assert_eq!(engines.len(), 3);
        let reference = engines[0].graph().snapshot_csr();
        for e in &engines[1..] {
            assert_eq!(e.graph().num_nodes(), 46);
            let csr = e.graph().snapshot_csr();
            assert_eq!(csr.nnz(), reference.nnz());
            for i in 0..46 {
                assert_eq!(csr.row_indices(i), reference.row_indices(i), "row {i}");
            }
        }
    }

    #[test]
    fn mutation_macs_are_shard_count_independent() {
        // The same mutation-only closed-loop workload on 1 and 3
        // replicas must report identical total MACs: inference stages
        // run on one replica per request, and the replication stage is
        // attributed once however many replicas applied the mutation.
        let run = |n_shards: usize| {
            let service = NaiService::new(
                engine_shards(50, n_shards, 19),
                infer_cfg(),
                serve_cfg(n_shards),
            )
            .unwrap();
            for i in 0..8u32 {
                let reply = service
                    .call(Request {
                        op: Op::Ingest {
                            features: vec![0.05 * i as f32; F],
                            neighbors: vec![i, i + 1],
                        },
                        shard: None,
                    })
                    .unwrap();
                assert!(matches!(reply, Reply::Ingest { .. }), "{reply:?}");
                let reply = service
                    .call(Request {
                        op: Op::ObserveEdge { u: 2 * i, v: 49 },
                        shard: None,
                    })
                    .unwrap();
                assert!(matches!(reply, Reply::Edge { .. }), "{reply:?}");
            }
            // Drain so every worker has stored its final MACs.
            service.shutdown();
            let m = service.metrics();
            assert!(m.macs.replication > 0, "mutation work counted");
            m.macs
        };
        let solo = run(1);
        let replicated = run(3);
        assert_eq!(
            solo.total(),
            replicated.total(),
            "solo {solo:?} vs replicated {replicated:?}"
        );
        assert_eq!(solo, replicated);
    }

    #[test]
    fn panicking_worker_repairs_admission_and_is_marked_dead() {
        // Gate-mode inference without trained gates panics inside the
        // engine: the worker must die without leaking its admission
        // slot, and the scheduler must answer later requests with a
        // typed error instead of hanging.
        let shards = engine_shards(30, 1, 27);
        let service = NaiService::new(shards, InferenceConfig::gate(1, K), serve_cfg(1)).unwrap();
        let t = service
            .submit(Request {
                op: Op::Infer { nodes: vec![0] },
                shard: None,
            })
            .unwrap();
        // The worker dies mid-batch; the client sees a timeout, not a
        // reply, and the in-flight slot is repaired.
        assert!(matches!(
            t.wait(Duration::from_secs(5)),
            Err(crate::ServeError::Timeout)
        ));
        let deadline = crate::sync::time::Instant::now() + Duration::from_secs(5);
        while service.queue_depth() != 0 && crate::sync::time::Instant::now() < deadline {
            crate::sync::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(service.queue_depth(), 0, "admission slot repaired");
        // Later requests get a typed error, never a hang: a submission
        // racing the worker's unwind lands in its channel and is
        // answered by the dying worker's drain loop ("worker is
        // gone"); once the scheduler has reaped the dead flag, jobs
        // are answered at dispatch ("no live shard workers"). Either
        // way every admission slot comes back.
        for _ in 0..3 {
            match service.call(Request {
                op: Op::Infer { nodes: vec![1] },
                shard: None,
            }) {
                Ok(Reply::Error { message }) => assert!(
                    message.contains("worker is gone") || message.contains("no live shard"),
                    "{message}"
                ),
                other => panic!("expected typed error, got {other:?}"),
            }
        }
        assert_eq!(service.queue_depth(), 0, "no slot leaked past the drain");
    }

    #[test]
    fn overloaded_is_typed_and_immediate() {
        use crate::sync::atomic::{AtomicBool, Ordering};
        let shards = engine_shards(40, 1, 9);
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 1024,
            max_wait: Duration::from_millis(300),
            queue_cap: 2,
            ..serve_cfg(1)
        };
        let service = Arc::new(NaiService::new(shards, infer_cfg(), cfg).unwrap());
        // The work-conserving batcher no longer parks admitted requests
        // on the max_wait deadline, so two idle submissions cannot pin
        // the admission bound. Saturate it the honest way instead: two
        // closed-loop flooders that resubmit the moment they are
        // answered keep in_flight hovering at queue_cap.
        let stop = Arc::new(AtomicBool::new(false));
        let flooders: Vec<_> = (0..2)
            .map(|_| {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                crate::sync::thread::spawn(move || {
                    // Relaxed: plain stop flag; no data published through it.
                    while !stop.load(Ordering::Relaxed) {
                        let _ = service.call(Request {
                            op: Op::Infer {
                                nodes: (0..40).collect(),
                            },
                            shard: None,
                        });
                    }
                })
            })
            .collect();
        // With the cap saturated, a submission must be rejected typed
        // and immediately — never a hang. The flooders' replies race
        // our probes, so retry until a probe lands on a full cap.
        let deadline = crate::sync::time::Instant::now() + Duration::from_secs(10);
        let mut rejected = false;
        while crate::sync::time::Instant::now() < deadline {
            let start = crate::sync::time::Instant::now();
            match service.submit(Request {
                op: Op::Infer { nodes: vec![3] },
                shard: None,
            }) {
                Err(ServeError::Overloaded) => {
                    assert!(
                        start.elapsed() < Duration::from_millis(100),
                        "rejection must be immediate, took {:?}",
                        start.elapsed()
                    );
                    rejected = true;
                    break;
                }
                Ok(t) => {
                    let _ = t.wait(Duration::from_secs(10));
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(rejected, "a saturated admission bound must reject");
        assert!(service.metrics().overloaded >= 1);
        // Relaxed: plain stop flag; no data published through it.
        stop.store(true, Ordering::Relaxed);
        for f in flooders {
            let _ = f.join();
        }
        // The bound is a rejection, not a latch: drained, new work is
        // admitted again.
        assert!(service
            .call(Request {
                op: Op::Infer { nodes: vec![1] },
                shard: None,
            })
            .is_ok());
    }

    #[test]
    fn load_shed_caps_depth_under_pressure() {
        let shards = engine_shards(60, 1, 13);
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(50),
            queue_cap: 8,
            shed: LoadShedPolicy {
                trigger_fraction: 0.0, // always under pressure
                t_max_cap: 1,
            },
            cache: CacheConfig::off(),
        };
        // Fixed-depth K config: without shedding every node exits at K.
        let service = NaiService::new(shards, InferenceConfig::fixed(K), cfg).unwrap();
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| {
                service
                    .submit(Request {
                        op: Op::Infer { nodes: vec![i] },
                        shard: None,
                    })
                    .unwrap()
            })
            .collect();
        for t in tickets {
            match t.wait(Duration::from_secs(10)).unwrap() {
                Reply::Infer { results, .. } => {
                    assert_eq!(results[0].depth, 1, "depth budget capped to 1 under shed");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        let m = service.metrics();
        assert!(m.degraded_batches >= 1);
        assert_eq!(m.shed_ops, 4);
    }

    #[test]
    fn load_shed_engages_under_pressure_and_recovers_after_drain() {
        // A realistic (mid-trigger) shed policy: the depth budget must
        // actually be capped while the queue is under pressure, and a
        // request served after the queue drains must get the full
        // budget back — shedding is a pressure response, not a latch.
        let shards = engine_shards(60, 1, 33);
        let cfg = ServeConfig {
            workers: 1,
            // The whole burst fits one batch, so it is dispatched only
            // once all of it is in flight (or 50 ms pass) — the shed
            // decision then deterministically sees in_flight = 8.
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            queue_cap: 8,
            shed: LoadShedPolicy {
                trigger_fraction: 0.5, // pressure at ≥ 4 in flight
                t_max_cap: 1,
            },
            cache: CacheConfig::off(),
        };
        // Fixed-depth K: without shedding every node exits at K.
        let service = NaiService::new(shards, InferenceConfig::fixed(K), cfg).unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                service
                    .submit(Request {
                        op: Op::Infer { nodes: vec![i] },
                        shard: None,
                    })
                    .unwrap()
            })
            .collect();
        for t in tickets {
            match t.wait(Duration::from_secs(10)).unwrap() {
                Reply::Infer { results, .. } => {
                    assert_eq!(results[0].depth, 1, "budget capped under pressure");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        let pressured = service.metrics();
        assert!(pressured.degraded_batches >= 1);
        assert_eq!(pressured.shed_ops, 8);

        // Drained: the closed loop above received every reply, so
        // in_flight is 0 and the next dispatch sees 1 < 4 — full depth.
        assert_eq!(service.queue_depth(), 0);
        match service
            .call(Request {
                op: Op::Infer { nodes: vec![0] },
                shard: None,
            })
            .unwrap()
        {
            Reply::Infer { results, .. } => {
                assert_eq!(results[0].depth, K, "budget restored after drain");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let recovered = service.metrics();
        assert_eq!(recovered.shed_ops, 8, "the post-drain request was not shed");
    }

    #[test]
    fn degraded_predictions_are_never_cached_as_full_depth_answers() {
        // Cache-enabled sibling of the shed-recovery test above. The
        // shed burst answers every node at the capped depth 1; if any
        // of those degraded answers landed in the cache, the post-drain
        // reads below would "hit" a depth-1 prediction and report it as
        // the full-budget answer — a silently wrong cache, not a shed.
        let shards = engine_shards(60, 1, 33);
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            queue_cap: 8,
            shed: LoadShedPolicy {
                trigger_fraction: 0.5, // pressure at ≥ 4 in flight
                t_max_cap: 1,
            },
            cache: CacheConfig::on(64),
        };
        let service = NaiService::new(shards, InferenceConfig::fixed(K), cfg).unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                service
                    .submit(Request {
                        op: Op::Infer { nodes: vec![i] },
                        shard: None,
                    })
                    .unwrap()
            })
            .collect();
        for t in tickets {
            match t.wait(Duration::from_secs(10)).unwrap() {
                Reply::Infer { results, .. } => {
                    assert_eq!(results[0].depth, 1, "budget capped under pressure");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        let pressured = service.metrics();
        assert_eq!(pressured.shed_ops, 8);
        assert_eq!(pressured.cache_hits, 0, "an empty cache cannot hit");
        assert_eq!(
            pressured.cache_misses, 8,
            "every burst read took the cached path"
        );

        // Post-drain: node 0 was answered at depth 1 above. A cached
        // degraded entry would hit here; the correct behavior is a miss
        // followed by a full-depth recomputation.
        assert_eq!(service.queue_depth(), 0);
        let full_depth = match service
            .call(Request {
                op: Op::Infer { nodes: vec![0] },
                shard: None,
            })
            .unwrap()
        {
            Reply::Infer { results, .. } => {
                assert_eq!(
                    results[0].depth, K,
                    "recomputed at the full budget, not replayed"
                );
                results[0].prediction
            }
            other => panic!("unexpected reply {other:?}"),
        };
        let recomputed = service.metrics();
        assert_eq!(
            recomputed.cache_hits, 0,
            "degraded burst left nothing to hit"
        );
        assert_eq!(recomputed.cache_misses, 9);

        // The full-depth answer IS cached: the same read again hits,
        // bit-equal, still at depth K.
        match service
            .call(Request {
                op: Op::Infer { nodes: vec![0] },
                shard: None,
            })
            .unwrap()
        {
            Reply::Infer {
                applied_seq,
                results,
                ..
            } => {
                assert_eq!(applied_seq, 0, "no mutations sequenced");
                assert_eq!(results[0].depth, K);
                assert_eq!(results[0].prediction, full_depth);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let hit = service.metrics();
        assert_eq!(hit.cache_hits, 1);
        assert_eq!(hit.cache_misses, 9);
    }

    #[test]
    fn invalid_shard_rejected_at_submit() {
        let shards = engine_shards(20, 2, 1);
        let service = NaiService::new(shards, infer_cfg(), serve_cfg(2)).unwrap();
        let err = service.call(Request {
            op: Op::Infer { nodes: vec![0] },
            shard: Some(7),
        });
        assert!(matches!(err, Err(ServeError::Invalid(_))));
    }

    #[test]
    fn metrics_track_served_and_macs() {
        let shards = engine_shards(50, 2, 21);
        let service = NaiService::new(shards, infer_cfg(), serve_cfg(2)).unwrap();
        for i in 0..10u32 {
            service
                .call(Request {
                    op: Op::Infer {
                        nodes: vec![i, i + 10],
                    },
                    shard: None,
                })
                .unwrap();
        }
        let m = service.metrics();
        assert_eq!(m.latency.count(), 20, "two nodes per request");
        assert_eq!(m.served, 20);
        assert!(m.macs.propagation > 0);
        assert!(m.macs.classification > 0);
        assert_eq!(m.macs.replication, 0, "read-only workload");
        assert_eq!(
            m.macs.total(),
            m.macs.propagation + m.macs.nap + m.macs.classification + m.macs.replication
        );
        assert!(m.batches >= 1);
        assert_eq!(m.queue_depth, 0, "closed loop leaves nothing in flight");
        assert!(m.latency.quantile(0.99) >= m.latency.quantile(0.5));
        // Every answered request carries a full stage timeline: the
        // request-granularity stage histograms line up with each other,
        // and the batch anatomy accounts for every dispatch.
        let requests = m.stages[nai_obs::Stage::QueueWait.index()].count();
        assert_eq!(requests, 10, "one stage sample per request");
        for s in nai_obs::Stage::ALL {
            assert_eq!(m.stages[s.index()].count(), requests, "{}", s.name());
        }
        assert_eq!(m.batch_sizes.count(), m.batches);
        assert_eq!(m.batch_sizes.sum(), 10, "every request rode one batch");
        assert_eq!(
            m.closed_on_max_batch + m.closed_on_deadline + m.closed_on_idle + m.closed_on_shutdown,
            m.batches,
            "every batch closes for exactly one reason"
        );
        // A single closed-loop client means each popped request is the
        // only one in flight: the work-conserving batcher closes those
        // batches immediately instead of sleeping out max_wait.
        assert!(m.closed_on_idle >= 1, "work-conserving closes happened");
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let shards = engine_shards(20, 1, 2);
        let service = NaiService::new(shards, infer_cfg(), serve_cfg(1)).unwrap();
        service.shutdown();
        let err = service.submit(Request {
            op: Op::Infer { nodes: vec![0] },
            shard: None,
        });
        assert!(matches!(err, Err(ServeError::ShuttingDown)));
        service.shutdown(); // idempotent
    }

    #[test]
    fn http_server_end_to_end_small() {
        let shards = engine_shards(50, 2, 17);
        let service = Arc::new(NaiService::new(shards, infer_cfg(), serve_cfg(2)).unwrap());
        let server = Server::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut client = HttpClient::connect(addr).unwrap();
        let (status, body) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(body.trim()).unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(health.get("shards").unwrap().as_u64(), Some(2));
        assert_eq!(health.get("feature_dim").unwrap().as_u64(), Some(F as u64));

        // One infer over the wire (keep-alive reuses the connection).
        let (status, body) = client
            .request(
                "POST",
                "/v1",
                Some("{\"op\":\"infer\",\"nodes\":[1,2],\"shard\":0}\n"),
            )
            .unwrap();
        assert_eq!(status, 200);
        let reply = Json::parse(body.trim()).unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(reply.get("results").unwrap().as_arr().unwrap().len(), 2);

        // Multi-line body: replies line up with request lines.
        let (status, body) = client
            .request(
                "POST",
                "/v1",
                Some("{\"op\":\"infer\",\"nodes\":[3]}\nnot json\n{\"op\":\"observe_edge\",\"u\":0,\"v\":1}\n"),
            )
            .unwrap();
        assert_eq!(status, 200);
        let lines: Vec<&str> = body.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            Json::parse(lines[0]).unwrap().get("op").unwrap().as_str(),
            Some("infer")
        );
        assert_eq!(
            Json::parse(lines[1])
                .unwrap()
                .get("error")
                .unwrap()
                .as_str(),
            Some("invalid")
        );

        // Unknown path → 404; bad method → 405; empty body → 400.
        assert_eq!(client.request("GET", "/nope", None).unwrap().0, 404);
        assert_eq!(client.request("PUT", "/v1", None).unwrap().0, 405);
        assert_eq!(client.request("POST", "/v1", Some("")).unwrap().0, 400);

        let (status, body) = client.request("GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let metrics = Json::parse(body.trim()).unwrap();
        assert!(metrics.get("served").unwrap().as_u64().unwrap() >= 3);
        assert!(metrics.get("latency_us").unwrap().get("p50").is_some());
        assert!(metrics.get("macs").unwrap().get("propagation").is_some());

        // POST /shutdown answers, then the server stops accepting.
        let (status, _) = http_call(addr, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        server.join();
        assert!(
            HttpClient::connect(addr).is_err() || {
                // The OS may accept briefly during teardown; a request must
                // then fail.
                let mut c = HttpClient::connect(addr).unwrap();
                c.request("GET", "/healthz", None).is_err()
            }
        );
    }
}
