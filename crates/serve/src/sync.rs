//! Sync facade: the only module in `nai-serve` allowed to name
//! `std::sync` or `std::thread`.
//!
//! Every other file in this crate imports its concurrency primitives
//! from here (`crate::sync::…`), never from `std` directly — the
//! `sync-facade` rule of `nai lint` (crates/lint) enforces this at the
//! token level. Normal builds re-export the
//! `std` types unchanged, so the facade costs nothing. Under
//! `--cfg nai_model` (ci.sh `model_check`) the same names resolve to
//! the workspace's `loom` model checker, whose scheduler exhaustively
//! explores thread interleavings and whose atomics expose the weak
//! memory model (a `Relaxed` load may legally return a stale value).
//! That single switch is what lets `tests/model.rs` prove the serve
//! core's admission, panic-repair, cache-versioning, and shutdown
//! invariants over *every* schedule within the preemption bound
//! instead of the one schedule a normal test run happens to see.
//!
//! The facade deliberately re-exports whole modules (`atomic`, `mpsc`,
//! `thread`) rather than individual items so call sites read
//! identically to idiomatic std code.

#[cfg(not(nai_model))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

#[cfg(nai_model)]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Atomic integers/bools plus `Ordering`.
pub mod atomic {
    #[cfg(not(nai_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(nai_model)]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Multi-producer channels (`channel`, `sync_channel` and their
/// handles/error types).
pub mod mpsc {
    #[cfg(not(nai_model))]
    pub use std::sync::mpsc::{
        channel, sync_channel, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        SyncSender, TryRecvError, TrySendError,
    };

    #[cfg(nai_model)]
    pub use loom::sync::mpsc::{
        channel, sync_channel, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        SyncSender, TryRecvError, TrySendError,
    };
}

/// Thread spawning/joining (`Builder`, `JoinHandle`, `sleep`, …).
pub mod thread {
    #[cfg(not(nai_model))]
    pub use std::thread::{sleep, spawn, Builder, JoinHandle};

    #[cfg(nai_model)]
    pub use loom::thread::{sleep, spawn, Builder, JoinHandle};

    /// Whether the current thread is unwinding. Always answered by
    /// `std` — loom runs test bodies on real OS threads, so the std
    /// panic flag is the truth in both builds.
    pub fn panicking() -> bool {
        std::thread::panicking()
    }
}

/// Monotonic time. `Instant` goes through the facade because wall-clock
/// reads are scheduling-dependent state: model-checked builds must not
/// branch on real elapsed time or the explored schedules diverge from
/// the executed ones. Loom has no clock, so both builds use `std` —
/// the model tests simply never construct one — but routing the name
/// through here keeps the "no `std::time::Instant` outside sync.rs"
/// lint simple and total.
pub mod time {
    pub use std::time::Instant;
}

/// Readiness polling. The reactor's event loop blocks in
/// [`poll::Poller::wait`], which is a scheduling decision exactly like
/// a `Condvar` wait — so the vendored `polling` crate routes through
/// the facade and the `sync-facade` lint forbids naming `polling::…`
/// anywhere else in the crate. Like [`time::Instant`], both builds use
/// the real implementation: loom has no readiness model, and the model
/// tests exercise the reactor's shared state (gate, completion queue)
/// directly without ever constructing a poller.
pub mod poll {
    pub use polling::{Event, Interest, Poller};
}

/// Lock, recovering from poison: a mutex poisoned by a panicking
/// worker still yields its data. Observability and teardown paths
/// (`/metrics` scrapes, `into_engines`) use this so one dead worker
/// cannot take monitoring down with it; the data they read is a
/// monotone accumulator, safe to expose even if the poisoning panic
/// interrupted an update.
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
