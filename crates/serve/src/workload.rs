//! Workload specifications and the shared node sampler.
//!
//! NAP's serving win depends on *traffic shape* as much as graph shape:
//! Zipf-skewed reads concentrate on hot (often high-degree) nodes that
//! exit early, mutation-heavy mixes exercise sequenced replication, and
//! open-loop bursts exercise admission control and load shedding. A
//! [`WorkloadSpec`] names one such shape; [`WorkloadSampler`] turns it
//! into a deterministic stream of wire [`Op`]s. Both `nai loadgen` and
//! the `nai bench` scenario matrix consume this module, so Zipf/uniform
//! node sampling is one code path.

use crate::proto::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// How node ids are drawn from the population `0..n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Every node equally likely.
    Uniform,
    /// Rank `r` (node id `r`) drawn with probability `∝ (r+1)^(-exponent)`
    /// — low ids are hot. Hub-star topologies place their hubs at the
    /// lowest ids, so Zipf traffic is automatically hub-heavy there.
    Zipf {
        /// Skew exponent `s > 0` (1.0 ≈ classic Zipf; larger = hotter).
        exponent: f64,
    },
}

/// How requests are paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Closed loop: each client issues its next request when the
    /// previous reply lands, so offered load tracks service rate.
    Closed,
    /// Open loop: requests fire on a fixed schedule regardless of
    /// replies — `burst` back-to-back requests every `period`. Offered
    /// load does *not* back off, so queue pressure (and shedding) is
    /// reachable.
    Open {
        /// Requests issued back-to-back at each schedule point.
        burst: usize,
        /// Time between schedule points.
        period: Duration,
    },
}

/// One named traffic shape for the scenario matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Cell label in bench reports (e.g. `"zipf-read"`).
    pub name: String,
    /// Fraction of requests that are reads (`Op::Infer`); the rest are
    /// mutations.
    pub read_fraction: f64,
    /// Within mutations, the fraction that are edge arrivals
    /// (`Op::ObserveEdge`); the rest are node ingests.
    pub edge_fraction: f64,
    /// Node-id sampling distribution for reads, edge endpoints, and
    /// ingest neighbors.
    pub sampling: Sampling,
    /// Node ids per read request.
    pub nodes_per_read: usize,
    /// Neighbors attached per ingest.
    pub ingest_degree: usize,
    /// Arrival pacing.
    pub arrivals: Arrivals,
}

impl WorkloadSpec {
    /// The named workload shape.
    ///
    /// # Errors
    /// Returns the list of known names when `name` is unknown.
    pub fn named(name: &str) -> Result<WorkloadSpec, String> {
        let base = |name: &str, read_fraction, edge_fraction, sampling, arrivals| WorkloadSpec {
            name: name.to_string(),
            read_fraction,
            edge_fraction,
            sampling,
            nodes_per_read: 2,
            ingest_degree: 3,
            arrivals,
        };
        match name {
            // Pure reads, uniform over the population: the baseline.
            "uniform-read" => Ok(base(name, 1.0, 0.0, Sampling::Uniform, Arrivals::Closed)),
            // Pure reads, hub-heavy: the traffic shape where adaptive
            // depth pays off the most (§V's hot-node argument).
            "zipf-read" => Ok(base(
                name,
                1.0,
                0.0,
                Sampling::Zipf { exponent: 1.1 },
                Arrivals::Closed,
            )),
            // A third of requests mutate the graph (ingests + edges):
            // exercises sequenced replication alongside reads.
            "mixed-mutation" => Ok(base(name, 0.67, 0.3, Sampling::Uniform, Arrivals::Closed)),
            // Open-loop bursts of hub-heavy reads with some mutations:
            // offered load ignores replies, so admission control and
            // the load-shed policy actually engage.
            "bursty-zipf" => Ok(base(
                name,
                0.9,
                0.25,
                Sampling::Zipf { exponent: 1.2 },
                Arrivals::Open {
                    burst: 8,
                    period: Duration::from_millis(1),
                },
            )),
            other => Err(format!(
                "unknown workload `{other}` (expected uniform-read | zipf-read | \
                 mixed-mutation | bursty-zipf)"
            )),
        }
    }

    /// The default workload matrix, in bench-report order.
    pub fn matrix() -> Vec<WorkloadSpec> {
        ["uniform-read", "zipf-read", "mixed-mutation", "bursty-zipf"]
            .iter()
            // nai-lint: allow(hot-path-panic) -- the array above lists exactly
            // the names `named` accepts; a typo fails every bench test.
            .map(|n| Self::named(n).expect("matrix names are known"))
            .collect()
    }

    /// Validates fractions and counts.
    ///
    /// # Errors
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err(format!(
                "read_fraction must be in [0, 1], got {}",
                self.read_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.edge_fraction) {
            return Err(format!(
                "edge_fraction must be in [0, 1], got {}",
                self.edge_fraction
            ));
        }
        if let Sampling::Zipf { exponent } = self.sampling {
            if !exponent.is_finite() || exponent <= 0.0 {
                return Err(format!(
                    "Zipf exponent must be finite and > 0, got {exponent}"
                ));
            }
        }
        if self.nodes_per_read == 0 {
            return Err("nodes_per_read must be ≥ 1".to_string());
        }
        if let Arrivals::Open { burst, .. } = self.arrivals {
            if burst == 0 {
                return Err("open-loop burst must be ≥ 1".to_string());
            }
        }
        Ok(())
    }
}

/// Samples a 0-based rank from `{0, …, n−1}` with `P(r) ∝ (r+1)^(-s)`
/// by rejection-inversion (Hörmann & Derflinger): the hat assigns
/// integer `k ∈ {1..n}` the strip `[F(k−½), F(k+½)]` of the continuous
/// envelope `F(x) = ∫ x^(-s)`, whose mass dominates `k^(-s)` because
/// `x^(-s)` is convex; inverting a uniform draw over the envelope and
/// accepting the top `k^(-s)` of each strip yields the exact Zipf pmf
/// in `O(1)` expected time for any `n` — no tables, so the population
/// can grow between calls.
pub fn zipf_rank<R: Rng>(s: f64, n: u32, rng: &mut R) -> u32 {
    assert!(n > 0, "zipf_rank needs a non-empty population");
    assert!(s.is_finite() && s > 0.0, "zipf exponent must be > 0");
    if n == 1 {
        return 0;
    }
    let near_one = (s - 1.0).abs() < 1e-6;
    let f = |x: f64| -> f64 {
        if near_one {
            x.ln()
        } else {
            x.powf(1.0 - s) / (1.0 - s)
        }
    };
    let f_inv = |y: f64| -> f64 {
        if near_one {
            y.exp()
        } else {
            ((1.0 - s) * y).powf(1.0 / (1.0 - s))
        }
    };
    let lo = f(0.5);
    let hi = f(n as f64 + 0.5);
    loop {
        let y = lo + rng.gen_range(0.0f64..1.0) * (hi - lo);
        let k = f_inv(y).round().clamp(1.0, n as f64);
        if y >= f(k + 0.5) - k.powf(-s) {
            return k as u32 - 1;
        }
    }
}

/// A deterministic op stream for one client: the spec plus a seeded RNG.
#[derive(Debug)]
pub struct WorkloadSampler {
    spec: WorkloadSpec,
    rng: StdRng,
}

impl WorkloadSampler {
    /// One sampler per client; distinct seeds give independent streams.
    pub fn new(spec: WorkloadSpec, seed: u64) -> WorkloadSampler {
        WorkloadSampler {
            spec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The spec this sampler draws from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draws one node id from the population `0..population` per the
    /// spec's sampling distribution.
    ///
    /// # Panics
    /// Panics if `population == 0`.
    pub fn sample_node(&mut self, population: u32) -> u32 {
        match self.spec.sampling {
            Sampling::Uniform => self.rng.gen_range(0..population),
            Sampling::Zipf { exponent } => zipf_rank(exponent, population, &mut self.rng),
        }
    }

    /// Draws the next operation against a population of `population`
    /// known-valid node ids (reads, edge endpoints, and ingest
    /// neighbors all stay below it). Mutations degrade gracefully on
    /// tiny populations: an edge needs two distinct nodes, so a
    /// 1-node population falls back to an ingest.
    ///
    /// # Panics
    /// Panics if `population == 0`.
    pub fn next_op(&mut self, population: u32, feature_dim: usize) -> Op {
        assert!(population > 0, "need at least one known node");
        let is_read = self.rng.gen_bool(self.spec.read_fraction);
        if is_read {
            return Op::Infer {
                nodes: (0..self.spec.nodes_per_read)
                    .map(|_| self.sample_node(population))
                    .collect(),
            };
        }
        let is_edge = self.rng.gen_bool(self.spec.edge_fraction) && population >= 2;
        if is_edge {
            let u = self.sample_node(population);
            let v = loop {
                let v = self.sample_node(population);
                if v != u {
                    break v;
                }
            };
            return Op::ObserveEdge { u, v };
        }
        Op::Ingest {
            features: (0..feature_dim)
                .map(|_| self.rng.gen_range(-1.0f32..1.0))
                .collect(),
            neighbors: (0..self.spec.ingest_degree)
                .map(|_| self.sample_node(population))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_validate() {
        let matrix = WorkloadSpec::matrix();
        assert!(matrix.len() >= 3, "bench needs ≥ 3 workloads");
        for spec in &matrix {
            spec.validate().unwrap();
            assert_eq!(&WorkloadSpec::named(&spec.name).unwrap(), spec);
        }
        assert!(WorkloadSpec::named("firehose").is_err());
        let mut bad = WorkloadSpec::named("uniform-read").unwrap();
        bad.read_fraction = 1.5;
        assert!(bad.validate().is_err());
        bad = WorkloadSpec::named("zipf-read").unwrap();
        bad.sampling = Sampling::Zipf { exponent: -1.0 };
        assert!(bad.validate().is_err());
        bad = WorkloadSpec::named("uniform-read").unwrap();
        bad.nodes_per_read = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn zipf_ranks_are_in_bounds_and_skewed() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 1000u32;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..60_000 {
            let r = zipf_rank(1.0, n, &mut rng);
            assert!(r < n);
            counts[r as usize] += 1;
        }
        // P(0)/P(1) = 2^s = 2 for s = 1; allow sampling noise.
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!((1.6..=2.5).contains(&ratio), "rank0/rank1 ratio {ratio}");
        // Monotone-ish decay across decades.
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // The head dominates: top 1% of ranks draws well over 10× its
        // uniform share.
        let head: u64 = counts[..10].iter().sum();
        assert!(head > 6_000, "head count {head}");
    }

    #[test]
    fn zipf_handles_degenerate_populations_and_exponents() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(zipf_rank(1.1, 1, &mut rng), 0);
        for _ in 0..200 {
            assert!(zipf_rank(0.5, 7, &mut rng) < 7);
            assert!(zipf_rank(1.0, 7, &mut rng) < 7);
            assert!(zipf_rank(2.5, 7, &mut rng) < 7);
        }
        // Strong skew pins nearly everything to rank 0.
        let zeros = (0..500)
            .filter(|_| zipf_rank(4.0, 100, &mut rng) == 0)
            .count();
        assert!(zeros > 400, "{zeros}");
    }

    #[test]
    fn sampler_is_deterministic_per_seed_and_respects_mix() {
        let spec = WorkloadSpec::named("mixed-mutation").unwrap();
        let mut a = WorkloadSampler::new(spec.clone(), 42);
        let mut b = WorkloadSampler::new(spec.clone(), 42);
        let mut c = WorkloadSampler::new(spec.clone(), 43);
        let ops_a: Vec<Op> = (0..50).map(|_| a.next_op(100, 4)).collect();
        let ops_b: Vec<Op> = (0..50).map(|_| b.next_op(100, 4)).collect();
        let ops_c: Vec<Op> = (0..50).map(|_| c.next_op(100, 4)).collect();
        assert_eq!(ops_a, ops_b, "same seed, same stream");
        assert_ne!(ops_a, ops_c, "different seed, different stream");

        let mut sampler = WorkloadSampler::new(spec, 7);
        let (mut reads, mut ingests, mut edges) = (0usize, 0usize, 0usize);
        for _ in 0..600 {
            match sampler.next_op(200, 4) {
                Op::Infer { nodes } => {
                    assert_eq!(nodes.len(), 2);
                    assert!(nodes.iter().all(|&v| v < 200));
                    reads += 1;
                }
                Op::Ingest {
                    features,
                    neighbors,
                } => {
                    assert_eq!(features.len(), 4);
                    assert!(features.iter().all(|x| x.is_finite()));
                    assert!(neighbors.iter().all(|&v| v < 200));
                    ingests += 1;
                }
                Op::ObserveEdge { u, v } => {
                    assert!(u != v && u < 200 && v < 200);
                    edges += 1;
                }
            }
        }
        // 67% reads, 30% of the rest edges — generous statistical bands.
        assert!((330..=470).contains(&reads), "reads {reads}");
        assert!(edges > 20, "edges {edges}");
        assert!(ingests > 80, "ingests {ingests}");
    }

    #[test]
    fn zipf_read_workload_is_hub_heavy() {
        let mut sampler = WorkloadSampler::new(WorkloadSpec::named("zipf-read").unwrap(), 11);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..300 {
            if let Op::Infer { nodes } = sampler.next_op(1000, 4) {
                for v in nodes {
                    total += 1;
                    head += usize::from(v < 10);
                }
            }
        }
        assert_eq!(total, 600, "zipf-read is read-only");
        assert!(
            head * 4 > total,
            "top-1% ids drew {head} of {total} samples"
        );
    }

    #[test]
    fn tiny_population_degrades_edges_to_ingests() {
        let mut spec = WorkloadSpec::named("mixed-mutation").unwrap();
        spec.read_fraction = 0.0;
        spec.edge_fraction = 1.0;
        let mut sampler = WorkloadSampler::new(spec, 3);
        for _ in 0..50 {
            match sampler.next_op(1, 4) {
                Op::Ingest { .. } => {}
                other => panic!("population 1 cannot host an edge: {other:?}"),
            }
        }
    }
}
