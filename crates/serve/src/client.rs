//! A tiny HTTP/1.1 client for the `nai loadgen` driver and the
//! end-to-end tests — one keep-alive connection, blocking requests,
//! with optional request pipelining (`send` × N, then `recv` × N, or
//! the batched [`HttpClient::pipeline`]). Clients carry no
//! shard-routing state: the service replicates every mutation to all
//! shards, so any connection can issue any request.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One keep-alive connection to a [`crate::http::Server`].
pub struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    host: String,
}

impl HttpClient {
    /// Connects with a 10 s connect timeout and 30 s read timeout.
    ///
    /// # Errors
    /// Propagates resolution/connection failures.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> std::io::Result<Self> {
        let host = addr.to_string();
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        let stream = TcpStream::connect_timeout(&resolved, Duration::from_secs(10))?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
            host,
        })
    }

    /// Renders one request's wire bytes (shared by the immediate and
    /// pipelined send paths).
    fn render(&self, method: &str, path: &str, body: &str, close: bool) -> String {
        let connection = if close { "Connection: close\r\n" } else { "" };
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n{connection}Content-Length: {}\r\n\r\n{body}",
            self.host,
            body.len()
        )
    }

    /// Writes one request without reading its response — the pipelined
    /// half of [`Self::request`]. Pair each `send` with a later
    /// [`Self::recv`]; the server answers strictly in request order.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> std::io::Result<()> {
        let bytes = self.render(method, path, body.unwrap_or(""), false);
        self.writer.write_all(bytes.as_bytes())?;
        self.writer.flush()
    }

    /// Reads one response (status, body) — the other half of
    /// [`Self::send`].
    ///
    /// # Errors
    /// Propagates I/O failures and malformed responses.
    pub fn recv(&mut self) -> std::io::Result<(u16, String)> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside response headers",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((key, value)) = header.split_once(':') {
                if key.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response body")
        })?;
        Ok((status, body))
    }

    /// Sends one request and reads the response.
    ///
    /// # Errors
    /// Propagates I/O failures and malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        self.send(method, path, body)?;
        self.recv()
    }

    /// As [`Self::request`], with `Connection: close`: the server
    /// answers, then closes. The client is spent afterwards.
    ///
    /// # Errors
    /// As [`Self::request`].
    pub fn request_closing(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let bytes = self.render(method, path, body.unwrap_or(""), true);
        self.writer.write_all(bytes.as_bytes())?;
        self.writer.flush()?;
        self.recv()
    }

    /// Pipelines a burst: writes every request back to back in one
    /// buffer (one write syscall), then reads the responses in order.
    /// This is what lets the server's reactor drain the whole burst
    /// into its admission queue in a single syscall round-trip.
    ///
    /// # Errors
    /// Propagates I/O failures; on error, responses already read are
    /// lost with it.
    pub fn pipeline(
        &mut self,
        method: &str,
        path: &str,
        bodies: &[&str],
    ) -> std::io::Result<Vec<(u16, String)>> {
        let mut burst = String::new();
        for body in bodies {
            burst.push_str(&self.render(method, path, body, false));
        }
        self.writer.write_all(burst.as_bytes())?;
        self.writer.flush()?;
        bodies.iter().map(|_| self.recv()).collect()
    }
}

/// One-shot convenience: connect, request, disconnect.
///
/// # Errors
/// As [`HttpClient::request`].
pub fn http_call(
    addr: impl ToSocketAddrs + std::fmt::Display,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    HttpClient::connect(addr)?.request(method, path, body)
}
