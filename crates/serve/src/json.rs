//! Minimal JSON for the newline-JSON wire protocol.
//!
//! The workspace's `serde` is a no-op compile shim (no crates.io
//! access), so the service carries its own value type, parser, and
//! writer. Deliberately small: objects keep insertion order (stable
//! wire output), all numbers are `f64` (integers are exact below
//! 2⁵³ — node ids, counts, and MACs all fit), and the writer emits the
//! subset the parser reads.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers exact below 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, later duplicates win on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    /// Returns a position-annotated message on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (last duplicate wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor: exact unsigned integer.
    pub fn uint(x: u64) -> Json {
        Json::Num(x as f64)
    }

    /// Convenience constructor: string.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/±inf; null is the least-wrong spelling.
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // wire format; map them to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let Some(c) = s.chars().next() else {
                        return Err("unterminated string".to_string());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"op":"infer","nodes":[1,2,3],"deep":{"a":[true,null]}}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("infer"));
        let nodes: Vec<u64> = v
            .get("nodes")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(nodes, vec![1, 2, 3]);
        assert_eq!(
            v.get("deep").unwrap().get("a").unwrap().as_arr().unwrap()[1],
            Json::Null
        );
    }

    #[test]
    fn roundtrips_through_display() {
        for text in [
            r#"{"a":1,"b":[1.5,"x",true,null],"c":{"d":-3}}"#,
            r#"[[],{},"",0]"#,
            r#""line\nbreak\t\"quoted\"""#,
        ] {
            let v = Json::parse(text).unwrap();
            let printed = v.to_string();
            assert_eq!(Json::parse(&printed).unwrap(), v, "{text} → {printed}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f".into());
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::uint(u64::MAX >> 12).as_u64(), Some(u64::MAX >> 12));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.25).to_string(), "3.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
