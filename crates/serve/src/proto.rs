//! The newline-JSON request/reply protocol.
//!
//! One request per line. Every request is an object with an `"op"`
//! discriminator and an optional `"shard"` **affinity hint**:
//!
//! ```text
//! {"op":"infer","nodes":[0,17,42]}
//! {"op":"ingest","features":[0.1,0.2],"neighbors":[3,9]}
//! {"op":"observe_edge","u":3,"v":9}
//! ```
//!
//! Clients never need to route: mutations are stamped with a global
//! sequence number and replicated to every shard, so any replica can
//! serve any node and an ingested node id is valid service-wide. The
//! `"shard"` hint only biases which replica computes the reply (e.g.
//! for measurement); it has no correctness meaning.
//!
//! Replies mirror the request order, one JSON object per line, each
//! carrying `"ok"` plus either the result or an `"error"` kind, and —
//! on success — the `"applied_seq"` sequence point of the serving
//! replica (the mutation sequence number its state included when the
//! reply was computed):
//!
//! ```text
//! {"ok":true,"op":"infer","shard":0,"applied_seq":7,"results":[{"node":0,"prediction":2,"depth":1},...]}
//! {"ok":true,"op":"ingest","shard":1,"applied_seq":8,"node":205,"prediction":0,"depth":2}
//! {"ok":true,"op":"observe_edge","shard":1,"applied_seq":9,"added":true}
//! {"ok":false,"error":"overloaded"}
//! ```

use crate::json::Json;

/// One graph-serving operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Classify existing nodes (read — served by any replica).
    Infer {
        /// Node ids to classify.
        nodes: Vec<u32>,
    },
    /// A node arrival: append it and answer its prediction (mutation —
    /// sequenced and replicated to every shard).
    Ingest {
        /// The arriving node's features.
        features: Vec<f32>,
        /// Existing nodes it attaches to.
        neighbors: Vec<u32>,
    },
    /// An edge arrival between existing nodes (mutation — sequenced and
    /// replicated to every shard).
    ObserveEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

/// An operation plus an optional replica affinity hint.
///
/// The hint names the replica that computes (and answers) the request;
/// without one, the scheduler assigns replicas round-robin. Mutations
/// are applied on *every* replica regardless of the hint — routing is
/// a load-balancing preference, never a consistency contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The operation.
    pub op: Op,
    /// Replica affinity hint, if any.
    pub shard: Option<usize>,
}

/// One per-node classification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeResult {
    /// Node id (globally valid — every replica knows it).
    pub node: u32,
    /// Predicted class.
    pub prediction: usize,
    /// Personalized propagation depth used.
    pub depth: usize,
}

/// A successful (or per-op failed) answer from a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Op::Infer`].
    Infer {
        /// Replica that served the read (informational).
        shard: usize,
        /// Mutation sequence number the serving replica's state
        /// included when this read executed.
        applied_seq: u64,
        /// One result per requested node, in request order.
        results: Vec<NodeResult>,
    },
    /// Answer to [`Op::Ingest`].
    Ingest {
        /// Replica that computed the prediction (informational — the
        /// node exists on every replica).
        shard: usize,
        /// Mutation sequence number the serving replica's state
        /// included when the prediction was computed (≥ this ingest's
        /// own sequence number).
        applied_seq: u64,
        /// Assigned node id, valid on every replica.
        node: u32,
        /// Predicted class for the arrival.
        prediction: usize,
        /// Personalized propagation depth used.
        depth: usize,
    },
    /// Answer to [`Op::ObserveEdge`].
    Edge {
        /// Replica that answered (the mutation is applied everywhere).
        shard: usize,
        /// This edge arrival's own sequence number (the answering
        /// replica replies at the moment it applies it).
        applied_seq: u64,
        /// `false` when the edge already existed.
        added: bool,
    },
    /// Per-op validation failure (bad node id, wrong feature length…).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

fn u32_array(v: &Json, field: &str) -> Result<Vec<u32>, String> {
    let arr = v
        .get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("`{field}` must be an array"))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .filter(|&id| id <= u32::MAX as u64)
                .map(|id| id as u32)
                .ok_or_else(|| format!("`{field}` entries must be u32 node ids"))
        })
        .collect()
}

fn u32_field(v: &Json, field: &str) -> Result<u32, String> {
    v.get(field)
        .and_then(Json::as_u64)
        .filter(|&id| id <= u32::MAX as u64)
        .map(|id| id as u32)
        .ok_or_else(|| format!("`{field}` must be a u32 node id"))
}

/// Parses one request line.
///
/// # Errors
/// Returns a message suitable for an `"invalid"` error reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line)?;
    let shard = match v.get("shard") {
        None | Some(Json::Null) => None,
        Some(s) => Some(
            s.as_u64()
                .ok_or_else(|| "`shard` must be a non-negative integer".to_string())?
                as usize,
        ),
    };
    let op = match v.get("op").and_then(Json::as_str) {
        Some("infer") => Op::Infer {
            nodes: u32_array(&v, "nodes")?,
        },
        Some("ingest") => {
            let feats = v
                .get("features")
                .and_then(Json::as_arr)
                .ok_or_else(|| "`features` must be an array".to_string())?;
            let features = feats
                .iter()
                .map(|x| {
                    x.as_f64()
                        .map(|f| f as f32)
                        .ok_or_else(|| "`features` entries must be numbers".to_string())
                })
                .collect::<Result<Vec<f32>, String>>()?;
            let neighbors = match v.get("neighbors") {
                None | Some(Json::Null) => Vec::new(),
                Some(_) => u32_array(&v, "neighbors")?,
            };
            Op::Ingest {
                features,
                neighbors,
            }
        }
        Some("observe_edge") => Op::ObserveEdge {
            u: u32_field(&v, "u")?,
            v: u32_field(&v, "v")?,
        },
        Some(other) => return Err(format!("unknown op `{other}`")),
        None => return Err("missing `op` field".to_string()),
    };
    Ok(Request { op, shard })
}

/// Renders a request as one wire line (the client side).
pub fn render_request(req: &Request) -> String {
    let mut fields: Vec<(&str, Json)> = match &req.op {
        Op::Infer { nodes } => vec![
            ("op", Json::str("infer")),
            (
                "nodes",
                Json::Arr(nodes.iter().map(|&n| Json::uint(n as u64)).collect()),
            ),
        ],
        Op::Ingest {
            features,
            neighbors,
        } => vec![
            ("op", Json::str("ingest")),
            (
                "features",
                Json::Arr(features.iter().map(|&x| Json::Num(x as f64)).collect()),
            ),
            (
                "neighbors",
                Json::Arr(neighbors.iter().map(|&n| Json::uint(n as u64)).collect()),
            ),
        ],
        Op::ObserveEdge { u, v } => vec![
            ("op", Json::str("observe_edge")),
            ("u", Json::uint(*u as u64)),
            ("v", Json::uint(*v as u64)),
        ],
    };
    if let Some(s) = req.shard {
        fields.push(("shard", Json::uint(s as u64)));
    }
    Json::obj(fields).to_string()
}

/// Renders a reply as one wire line.
pub fn render_reply(reply: &Reply) -> String {
    match reply {
        Reply::Infer {
            shard,
            applied_seq,
            results,
        } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("infer")),
            ("shard", Json::uint(*shard as u64)),
            ("applied_seq", Json::uint(*applied_seq)),
            (
                "results",
                Json::Arr(
                    results
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("node", Json::uint(r.node as u64)),
                                ("prediction", Json::uint(r.prediction as u64)),
                                ("depth", Json::uint(r.depth as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Reply::Ingest {
            shard,
            applied_seq,
            node,
            prediction,
            depth,
        } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("ingest")),
            ("shard", Json::uint(*shard as u64)),
            ("applied_seq", Json::uint(*applied_seq)),
            ("node", Json::uint(*node as u64)),
            ("prediction", Json::uint(*prediction as u64)),
            ("depth", Json::uint(*depth as u64)),
        ]),
        Reply::Edge {
            shard,
            applied_seq,
            added,
        } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("observe_edge")),
            ("shard", Json::uint(*shard as u64)),
            ("applied_seq", Json::uint(*applied_seq)),
            ("added", Json::Bool(*added)),
        ]),
        Reply::Error { message } => error_line("invalid", Some(message)),
    }
    .to_string()
}

/// An `{"ok":false,...}` object for transport-level failures
/// (`overloaded`, `shutting_down`, `invalid`, `timeout`, …).
pub fn error_line(kind: &str, message: Option<&str>) -> Json {
    let mut fields = vec![("ok", Json::Bool(false)), ("error", Json::str(kind))];
    if let Some(m) = message {
        fields.push(("message", Json::str(m)));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_ops() {
        let r = parse_request(r#"{"op":"infer","nodes":[4,0]}"#).unwrap();
        assert_eq!(
            r,
            Request {
                op: Op::Infer { nodes: vec![4, 0] },
                shard: None
            }
        );
        let r = parse_request(r#"{"op":"ingest","features":[0.5,-1],"neighbors":[2],"shard":3}"#)
            .unwrap();
        assert_eq!(
            r,
            Request {
                op: Op::Ingest {
                    features: vec![0.5, -1.0],
                    neighbors: vec![2]
                },
                shard: Some(3)
            }
        );
        let r = parse_request(r#"{"op":"observe_edge","u":1,"v":2,"shard":0}"#).unwrap();
        assert_eq!(
            r,
            Request {
                op: Op::ObserveEdge { u: 1, v: 2 },
                shard: Some(0)
            }
        );
    }

    #[test]
    fn ingest_neighbors_default_empty() {
        let r = parse_request(r#"{"op":"ingest","features":[1]}"#).unwrap();
        assert_eq!(
            r.op,
            Op::Ingest {
                features: vec![1.0],
                neighbors: vec![]
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"nodes":[1]}"#,
            r#"{"op":"teleport"}"#,
            r#"{"op":"infer","nodes":[-1]}"#,
            r#"{"op":"infer","nodes":[1.5]}"#,
            r#"{"op":"infer","nodes":"all"}"#,
            r#"{"op":"ingest","features":["x"]}"#,
            r#"{"op":"observe_edge","u":1}"#,
            r#"{"op":"infer","nodes":[],"shard":-1}"#,
            r#"{"op":"infer","nodes":[9999999999]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn request_render_parse_roundtrip() {
        for req in [
            Request {
                op: Op::Infer {
                    nodes: vec![0, 99, 7],
                },
                shard: Some(1),
            },
            Request {
                op: Op::Ingest {
                    features: vec![0.25, -0.5, 3.0],
                    neighbors: vec![1, 2],
                },
                shard: None,
            },
            Request {
                op: Op::ObserveEdge { u: 5, v: 9 },
                shard: Some(0),
            },
        ] {
            let line = render_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn replies_render_with_ok_flag_and_sequence() {
        let line = render_reply(&Reply::Infer {
            shard: 2,
            applied_seq: 11,
            results: vec![NodeResult {
                node: 7,
                prediction: 1,
                depth: 3,
            }],
        });
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("shard").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("applied_seq").unwrap().as_u64(), Some(11));
        let r = &v.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(r.get("node").unwrap().as_u64(), Some(7));
        assert_eq!(r.get("depth").unwrap().as_u64(), Some(3));

        let line = render_reply(&Reply::Edge {
            shard: 0,
            applied_seq: 4,
            added: true,
        });
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("applied_seq").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("added").unwrap().as_bool(), Some(true));

        let err = render_reply(&Reply::Error {
            message: "node 9 out of range".into(),
        });
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("invalid"));
    }

    #[test]
    fn error_lines_carry_kind() {
        let v = error_line("overloaded", None);
        assert_eq!(v.get("error").unwrap().as_str(), Some("overloaded"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    }
}
