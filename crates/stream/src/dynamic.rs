//! A growable undirected graph for streaming arrivals.
//!
//! [`nai_graph::CsrMatrix`] is immutable by design (compressed storage
//! cannot absorb appends); streaming workloads instead keep adjacency
//! lists and derive normalization weights from *current* degrees at
//! propagation time, so an edge arrival never invalidates precomputed
//! values.

use nai_graph::{CsrMatrix, Graph};
use nai_linalg::DenseMatrix;

/// Growable undirected graph: adjacency lists + row-major features.
///
/// Every adjacency row is kept **sorted ascending** as an invariant, so
/// edge-existence checks ([`Self::has_edge`], and the duplicate scan
/// inside [`Self::add_edge`]) are `O(log d)` binary searches instead of
/// `O(d)` scans — on a hub node under streaming ingest (and under the
/// serving layer's mutation replication, which applies every arrival on
/// every shard replica) the linear probe is the hot path.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    adj: Vec<Vec<u32>>,
    features: Vec<f32>,
    feature_dim: usize,
    num_edges: usize,
}

impl DynamicGraph {
    /// An empty graph with the given feature dimensionality.
    ///
    /// # Panics
    /// Panics if `feature_dim` is zero.
    pub fn new(feature_dim: usize) -> Self {
        assert!(feature_dim > 0, "feature_dim must be positive");
        Self {
            adj: Vec::new(),
            features: Vec::new(),
            feature_dim,
            num_edges: 0,
        }
    }

    /// Seeds a dynamic graph from a static one (the observed training
    /// graph in the inductive protocol).
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut adj = vec![Vec::new(); n];
        for (i, neighbors) in adj.iter_mut().enumerate() {
            neighbors.extend(g.adj.row_indices(i));
            // CSR rows are already ascending; sorting here makes the
            // invariant independent of how the source graph was built
            // (one-time seed cost, nearly free on sorted input).
            neighbors.sort_unstable();
        }
        Self {
            adj,
            features: g.features.as_slice().to_vec(),
            feature_dim: g.feature_dim(),
            num_edges: g.num_edges(),
        }
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Undirected edge count (each edge counted once).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Degree of `v` (neighbor count, self excluded).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Whether the undirected edge `(u, v)` exists — an `O(log d)`
    /// binary search over the sorted adjacency row.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Feature row of `v`.
    pub fn feature(&self, v: u32) -> &[f32] {
        let f = self.feature_dim;
        &self.features[v as usize * f..(v as usize + 1) * f]
    }

    /// `2m + n`, the Eq. (7) normalizer of the current graph.
    pub fn total_tilde_degree(&self) -> f64 {
        (2 * self.num_edges + self.num_nodes()) as f64
    }

    /// Appends a node with `features` connected to existing `neighbors`.
    /// Duplicate neighbor ids are collapsed; returns the new node id.
    ///
    /// # Panics
    /// Panics if the feature length is wrong or a neighbor id does not
    /// exist yet (streaming arrivals attach to the *observed* graph).
    pub fn add_node(&mut self, features: &[f32], neighbors: &[u32]) -> u32 {
        assert_eq!(
            features.len(),
            self.feature_dim,
            "feature length must match graph dimension"
        );
        let v = self.adj.len() as u32;
        let mut uniq: Vec<u32> = neighbors.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        for &u in &uniq {
            assert!(
                (u as usize) < self.adj.len(),
                "neighbor {u} must already exist (graph has {} nodes)",
                self.adj.len()
            );
        }
        self.features.extend_from_slice(features);
        self.adj.push(uniq.clone()); // sorted by construction
        for &u in &uniq {
            // `v` is the largest id in the graph, so appending keeps the
            // neighbor's row sorted.
            debug_assert!(self.adj[u as usize].last().is_none_or(|&last| last < v));
            self.adj[u as usize].push(v);
        }
        self.num_edges += uniq.len();
        v
    }

    /// Adds an undirected edge between existing nodes. Returns `false`
    /// (and changes nothing) when the edge already exists. The duplicate
    /// check is an `O(log d)` binary search (rows stay sorted).
    ///
    /// # Panics
    /// Panics on out-of-range ids or a self-loop (self-loops are implicit
    /// in the `Ã` normalization and never stored).
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(u != v, "explicit self-loops are not representable");
        assert!((u as usize) < self.adj.len(), "node {u} out of range");
        assert!((v as usize) < self.adj.len(), "node {v} out of range");
        let pos_u = match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        let pos_v = self.adj[v as usize]
            .binary_search(&u)
            .expect_err("adjacency must stay symmetric");
        self.adj[u as usize].insert(pos_u, v);
        self.adj[v as usize].insert(pos_v, u);
        self.num_edges += 1;
        true
    }

    /// Breadth-first frontier of every node within `radius` hops of any
    /// seed, as `(node, hop distance)` pairs (seeds themselves at
    /// distance 0; duplicate seeds collapse). Returns `None` as soon as
    /// more than `budget` nodes have been visited — the caller's signal
    /// to fall back to a conservative global action instead of an
    /// unbounded walk (the serving layer's cache invalidation flushes
    /// everything in that case).
    ///
    /// This is the *dirty frontier* of a mutation under fixed-depth
    /// propagation: an edge arrival `(u, v)` only changes adjacency and
    /// degrees of `u` and `v`, so a node's ≤`radius`-layer propagation
    /// output can change only if it is within `radius` hops of a touched
    /// node. Edge additions only shrink distances, so walking the
    /// *post-mutation* adjacency is conservative (it covers every node
    /// whose old output involved the touched region).
    ///
    /// # Panics
    /// Panics if a seed id is out of range.
    pub fn k_hop_frontier(
        &self,
        seeds: &[u32],
        radius: usize,
        budget: usize,
    ) -> Option<Vec<(u32, usize)>> {
        use std::collections::HashMap;
        let mut dist: HashMap<u32, usize> = HashMap::new();
        let mut order: Vec<(u32, usize)> = Vec::new();
        for &s in seeds {
            assert!((s as usize) < self.adj.len(), "seed {s} out of range");
            if dist.insert(s, 0).is_none() {
                if order.len() >= budget {
                    return None;
                }
                order.push((s, 0));
            }
        }
        let mut head = 0;
        while head < order.len() {
            let (v, d) = order[head];
            head += 1;
            if d == radius {
                continue;
            }
            for &u in self.neighbors(v) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(u) {
                    e.insert(d + 1);
                    if order.len() >= budget {
                        return None;
                    }
                    order.push((u, d + 1));
                }
            }
        }
        Some(order)
    }

    /// Materializes the current adjacency as a [`CsrMatrix`]
    /// (equivalence tests and λ₂ estimation).
    pub fn snapshot_csr(&self) -> CsrMatrix {
        let mut edges = Vec::with_capacity(self.num_edges);
        for (i, neighbors) in self.adj.iter().enumerate() {
            for &j in neighbors {
                if (i as u32) < j {
                    edges.push((i as u32, j));
                }
            }
        }
        // nai-lint: allow(hot-path-panic) -- edges are read out of our own
        // adjacency lists, so every endpoint is < num_nodes by construction.
        CsrMatrix::undirected_adjacency(self.adj.len(), &edges).expect("valid dynamic graph")
    }

    /// Materializes a static [`Graph`] with the supplied labels.
    ///
    /// # Panics
    /// Panics if `labels.len() != num_nodes` or `num_classes == 0`.
    pub fn snapshot_graph(&self, labels: Vec<u32>, num_classes: usize) -> Graph {
        assert_eq!(labels.len(), self.num_nodes(), "one label per node");
        let features =
            DenseMatrix::from_vec(self.num_nodes(), self.feature_dim, self.features.clone());
        Graph::new(self.snapshot_csr(), features, labels, num_classes)
            // nai-lint: allow(hot-path-panic) -- deliberate precondition assert
            // (documented # Panics); label arity is checked two lines up.
            .expect("snapshot is structurally valid")
    }

    /// Gathers feature rows for `nodes`.
    pub fn gather_features(&self, nodes: &[u32]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(nodes.len(), self.feature_dim);
        for (t, &v) in nodes.iter().enumerate() {
            out.row_mut(t).copy_from_slice(self.feature(v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_graph::generators::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seed_graph(n: usize) -> Graph {
        generate(
            &GeneratorConfig {
                num_nodes: n,
                num_classes: 3,
                feature_dim: 4,
                avg_degree: 6.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(11),
        )
    }

    #[test]
    fn from_graph_preserves_structure() {
        let g = seed_graph(100);
        let d = DynamicGraph::from_graph(&g);
        assert_eq!(d.num_nodes(), 100);
        assert_eq!(d.num_edges(), g.num_edges());
        for v in 0..100u32 {
            assert_eq!(d.degree(v), g.adj.row_nnz(v as usize));
            assert_eq!(d.feature(v), g.features.row(v as usize));
        }
    }

    #[test]
    fn snapshot_roundtrips_to_identical_csr() {
        let g = seed_graph(80);
        let d = DynamicGraph::from_graph(&g);
        let csr = d.snapshot_csr();
        assert_eq!(csr.nnz(), g.adj.nnz());
        for i in 0..80 {
            let mut a: Vec<u32> = csr.row_indices(i).to_vec();
            let mut b: Vec<u32> = g.adj.row_indices(i).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "row {i}");
        }
    }

    #[test]
    fn add_node_wires_both_directions() {
        let g = seed_graph(20);
        let mut d = DynamicGraph::from_graph(&g);
        let v = d.add_node(&[1.0, 2.0, 3.0, 4.0], &[0, 5, 5, 7]);
        assert_eq!(v, 20);
        assert_eq!(d.degree(v), 3, "duplicates collapse");
        assert!(d.neighbors(0).contains(&v));
        assert!(d.neighbors(5).contains(&v));
        assert!(d.neighbors(7).contains(&v));
        assert_eq!(d.num_edges(), g.num_edges() + 3);
        assert_eq!(d.feature(v), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn add_edge_dedups() {
        let g = seed_graph(10);
        let mut d = DynamicGraph::from_graph(&g);
        let before = d.num_edges();
        let u = 0u32;
        // Find a non-neighbor of 0.
        let v = (1..10u32).find(|&x| !d.has_edge(u, x)).unwrap();
        assert!(d.add_edge(u, v));
        assert!(!d.add_edge(u, v), "duplicate edge rejected");
        assert!(!d.add_edge(v, u), "reverse duplicate rejected");
        assert_eq!(d.num_edges(), before + 1);
        assert!(d.has_edge(u, v) && d.has_edge(v, u));
    }

    #[test]
    fn adjacency_rows_stay_sorted_under_mutation() {
        use rand::Rng;
        let g = seed_graph(30);
        let mut d = DynamicGraph::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(23);
        for step in 0..80u32 {
            if step % 2 == 0 {
                let n = d.num_nodes() as u32;
                let nbrs: Vec<u32> = (0..3).map(|k| (step.wrapping_mul(7) + k) % n).collect();
                d.add_node(&[0.1; 4], &nbrs);
            } else {
                let n = d.num_nodes() as u32;
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if u != v {
                    d.add_edge(u, v);
                }
            }
        }
        for v in 0..d.num_nodes() as u32 {
            let row = d.neighbors(v);
            assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row {v} not sorted/unique: {row:?}"
            );
            for &u in row {
                assert!(d.has_edge(v, u) && d.has_edge(u, v));
            }
        }
    }

    #[test]
    fn isolated_arrival_is_allowed() {
        let g = seed_graph(10);
        let mut d = DynamicGraph::from_graph(&g);
        let v = d.add_node(&[0.0; 4], &[]);
        assert_eq!(d.degree(v), 0);
        assert_eq!(d.num_edges(), g.num_edges());
    }

    #[test]
    fn total_tilde_degree_tracks_arrivals() {
        let g = seed_graph(30);
        let mut d = DynamicGraph::from_graph(&g);
        let base = d.total_tilde_degree();
        d.add_node(&[0.0; 4], &[0, 1]);
        // +1 node, +2 edges → 2m+n grows by 2·2 + 1 = 5.
        assert_eq!(d.total_tilde_degree(), base + 5.0);
    }

    #[test]
    #[should_panic(expected = "must already exist")]
    fn future_neighbor_panics() {
        let g = seed_graph(5);
        let mut d = DynamicGraph::from_graph(&g);
        let _ = d.add_node(&[0.0; 4], &[99]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let g = seed_graph(5);
        let mut d = DynamicGraph::from_graph(&g);
        let _ = d.add_edge(2, 2);
    }

    /// A path 0 − 1 − 2 − … − (n−1): hop distances are exact, so the
    /// frontier walk's radius and budget behavior is fully observable.
    fn path_graph(n: usize) -> DynamicGraph {
        let mut d = DynamicGraph::new(2);
        d.add_node(&[0.0; 2], &[]);
        for v in 1..n as u32 {
            d.add_node(&[0.0; 2], &[v - 1]);
        }
        d
    }

    #[test]
    fn k_hop_frontier_reports_exact_hop_distances() {
        let d = path_graph(8);
        let mut frontier = d.k_hop_frontier(&[3], 2, 100).unwrap();
        frontier.sort_unstable();
        assert_eq!(frontier, vec![(1, 2), (2, 1), (3, 0), (4, 1), (5, 2)]);
        // Radius 0: just the (deduped) seeds.
        let solo = d.k_hop_frontier(&[6, 6], 0, 100).unwrap();
        assert_eq!(solo, vec![(6, 0)]);
        // Two seeds (an edge's endpoints): distance to the nearest seed.
        let mut pair = d.k_hop_frontier(&[2, 3], 1, 100).unwrap();
        pair.sort_unstable();
        assert_eq!(pair, vec![(1, 1), (2, 0), (3, 0), (4, 1)]);
    }

    #[test]
    fn k_hop_frontier_respects_budget() {
        let d = path_graph(10);
        // The radius-3 ball around node 5 holds 7 nodes.
        assert_eq!(d.k_hop_frontier(&[5], 3, 7).unwrap().len(), 7);
        assert!(d.k_hop_frontier(&[5], 3, 6).is_none(), "over budget");
        assert!(d.k_hop_frontier(&[5], 3, 0).is_none(), "0 = always bail");
    }

    #[test]
    fn k_hop_frontier_on_a_hub_blows_its_budget() {
        // A star: the hub's 1-hop ball is the whole graph, so any small
        // budget forces the conservative fallback.
        let mut d = DynamicGraph::new(2);
        d.add_node(&[0.0; 2], &[]);
        for _ in 0..50 {
            d.add_node(&[0.0; 2], &[0]);
        }
        assert!(d.k_hop_frontier(&[0], 1, 16).is_none());
        // A leaf's 1-hop ball is {leaf, hub}: cheap.
        assert_eq!(d.k_hop_frontier(&[7], 1, 16).unwrap().len(), 2);
    }

    #[test]
    fn snapshot_graph_carries_features_and_labels() {
        let g = seed_graph(25);
        let mut d = DynamicGraph::from_graph(&g);
        d.add_node(&[9.0; 4], &[3]);
        let labels: Vec<u32> = (0..26).map(|i| i % 3).collect();
        let snap = d.snapshot_graph(labels.clone(), 3);
        assert_eq!(snap.num_nodes(), 26);
        assert_eq!(snap.labels, labels);
        assert_eq!(snap.features.row(25), &[9.0; 4]);
    }
}
