//! Streaming inductive inference for NAI.
//!
//! The paper motivates NAI with latency-critical *streaming* workloads:
//! session recommenders, millisecond fraud detection, point-cloud
//! perception. Those systems do not re-load a frozen graph per request —
//! nodes and edges **arrive continuously** and every arrival needs a
//! prediction now. This crate supplies the substrate the paper assumes but
//! never spells out:
//!
//! * [`dynamic::DynamicGraph`] — a growable undirected graph with O(1)
//!   amortized node/edge appends and on-the-fly symmetric normalization
//!   (adjacency weights are derived from *current* degrees, so no stored
//!   normalized matrix can go stale);
//! * [`stationary::IncrementalStationary`] — the rank-1 stationary state
//!   `X^(∞)` of Eq. (7) maintained under node/edge arrivals in `O(f)` per
//!   update instead of `O(n·f)` recomputation;
//! * [`engine::StreamingEngine`] — per-arrival Algorithm 1: ingest a node,
//!   flush a micro-batch, get back predictions with personalized depths
//!   and per-arrival latency;
//! * [`stats::LatencyStats`] — p50/p95/p99 latency and throughput
//!   accounting for the streaming benches.
//!
//! The static [`nai_core::inference::NaiEngine`] and this engine agree
//! exactly when the stream is ingested fully before one flush (tested in
//! `tests/stream_matches_static.rs`); the streaming value is everything
//! before that point: predictions against the graph *as it existed at
//! arrival time*, without rebuilding CSR matrices or stationary states.

pub mod dynamic;
pub mod engine;
pub mod stationary;
pub mod stats;
pub mod sync;

pub use dynamic::DynamicGraph;
pub use engine::{StreamPrediction, StreamingEngine};
pub use stationary::IncrementalStationary;
pub use stats::{LatencyStats, MacsBreakdown, StageTimes};
