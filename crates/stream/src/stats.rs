//! Latency/throughput accounting for streaming inference.

use crate::sync::{lock_recover, Mutex};
use std::time::Duration;

/// Cumulative multiply-accumulate counts split by pipeline stage.
///
/// The serving layer exports these per worker (`/metrics`); summing the
/// fields gives the engine's `macs_total()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacsBreakdown {
    /// Feature-propagation SpMM MACs (the Eq. (1) steps).
    pub propagation: u64,
    /// NAP exit decisions: distance checks, gate forwards, Eq. (10)
    /// bound evaluations.
    pub nap: u64,
    /// Per-depth classifier forwards at exit time.
    pub classification: u64,
    /// Graph-mutation application: the incremental stationary
    /// accumulator updates of an ingest / edge arrival. Under the
    /// serving layer's sequenced mutation replication every shard
    /// replica performs *identical* work here, so the service reports
    /// this stage once (max over replicas) instead of summing it — a
    /// mutation's cost must not scale with the shard count in
    /// `/metrics`.
    pub replication: u64,
}

impl MacsBreakdown {
    /// Sum over all stages.
    pub fn total(&self) -> u64 {
        self.propagation + self.nap + self.classification + self.replication
    }

    /// Accumulates another breakdown. This sums *every* stage — correct
    /// for truly disjoint engines; for shard replicas that apply the
    /// same replicated mutations, aggregate `replication` by `max`
    /// instead (see `nai-serve`'s metrics merge).
    pub fn merge(&mut self, other: &MacsBreakdown) {
        self.propagation += other.propagation;
        self.nap += other.nap;
        self.classification += other.classification;
        self.replication += other.replication;
    }
}

/// Cumulative wall time split by engine pipeline stage — the time-axis
/// twin of [`MacsBreakdown`], attributed at the same code sites inside
/// `StreamingEngine::infer_nodes`.
///
/// The serving layer snapshots this before and after each coalesced
/// engine call and takes [`StageTimes::since`] to attribute the call's
/// wall time to the batch it processed, so `/metrics` can split
/// end-to-end latency into propagation / NAP / classification spans.
/// Cumulative like `macs_total()`: never reset by `reset_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Feature propagation: stationary rows, BFS support planning,
    /// per-hop SpMM steps, frontier shrinking.
    pub propagation: Duration,
    /// NAP exit decisions: distance checks, gate forwards, Eq. (10)
    /// bound evaluations.
    pub nap: Duration,
    /// Per-depth classifier forwards and exit gathers.
    pub classification: Duration,
}

impl StageTimes {
    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        self.propagation + self.nap + self.classification
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &StageTimes) {
        self.propagation += other.propagation;
        self.nap += other.nap;
        self.classification += other.classification;
    }

    /// Stage-wise `self − earlier` (saturating): the time attributable
    /// to whatever ran between two snapshots of a cumulative counter.
    pub fn since(&self, earlier: &StageTimes) -> StageTimes {
        StageTimes {
            propagation: self.propagation.saturating_sub(earlier.propagation),
            nap: self.nap.saturating_sub(earlier.nap),
            classification: self.classification.saturating_sub(earlier.classification),
        }
    }
}

/// Lazily maintained sorted view of the samples; `stale` and `buf`
/// share one lock so their coherence needs no cross-field reasoning.
#[derive(Debug, Clone, Default)]
struct SortedCache {
    buf: Vec<Duration>,
    stale: bool,
}

/// Accumulates per-arrival latencies and exit depths.
#[derive(Debug, Default)]
pub struct LatencyStats {
    latencies: Vec<Duration>,
    depth_sum: u64,
    /// `depth_histogram[d]` counts recorded predictions that exited at
    /// depth `d` (slot 0 exists but stays empty for NAP depths, which
    /// start at 1). Exported per cell by the scenario bench harness and
    /// by `/metrics`.
    depth_histogram: Vec<u64>,
    total_busy: Duration,
    /// Sorted copy of `latencies`, rebuilt lazily on the first quantile
    /// read after a mutation. A `/metrics` scrape between arrivals then
    /// costs one buffer reuse instead of a fresh clone + sort of the
    /// full sample vector (~2 MB of churn at the serving layer's
    /// 2^18-sample worker bound). A `Mutex` (not `RefCell`) keeps the
    /// type `Sync`; reads are single-threaded in practice, so the lock
    /// is uncontended.
    sorted: Mutex<SortedCache>,
}

impl Clone for LatencyStats {
    fn clone(&self) -> Self {
        Self {
            latencies: self.latencies.clone(),
            depth_sum: self.depth_sum,
            depth_histogram: self.depth_histogram.clone(),
            total_busy: self.total_busy,
            sorted: Mutex::new(lock_recover(&self.sorted).clone()),
        }
    }
}

impl LatencyStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction's latency and exit depth.
    pub fn record(&mut self, latency: Duration, depth: usize) {
        self.latencies.push(latency);
        self.depth_sum += depth as u64;
        if depth >= self.depth_histogram.len() {
            self.depth_histogram.resize(depth + 1, 0);
        }
        self.depth_histogram[depth] += 1;
        self.total_busy += latency;
        self.sorted
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .stale = true;
    }

    /// Absorbs another accumulator, as if every one of its samples had
    /// been [`Self::record`]ed here: quantiles over the merged
    /// accumulator equal quantiles over the concatenated sample sets.
    /// Used to aggregate per-worker stats for `/metrics`.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.latencies.extend_from_slice(&other.latencies);
        self.depth_sum += other.depth_sum;
        if other.depth_histogram.len() > self.depth_histogram.len() {
            self.depth_histogram.resize(other.depth_histogram.len(), 0);
        }
        for (mine, &theirs) in self.depth_histogram.iter_mut().zip(&other.depth_histogram) {
            *mine += theirs;
        }
        self.total_busy += other.total_busy;
        self.sorted
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .stale = true;
    }

    /// Number of recorded predictions.
    pub fn count(&self) -> usize {
        self.latencies.len()
    }

    /// Exit-depth histogram: slot `d` counts predictions that exited at
    /// depth `d` (NAP depths start at 1, so slot 0 is normally empty).
    /// The slice length is one past the deepest recorded exit; empty
    /// when nothing has been recorded.
    pub fn depth_histogram(&self) -> &[u64] {
        &self.depth_histogram
    }

    /// Mean exit depth.
    pub fn mean_depth(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.depth_sum as f64 / self.latencies.len() as f64
    }

    /// Mean latency.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.total_busy / self.latencies.len() as u32
    }

    /// The `q`-quantile latency (`q ∈ [0, 1]`), nearest-rank.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        self.quantiles(&[q])[0]
    }

    /// Several nearest-rank quantiles from one sort of the samples —
    /// what a metrics endpoint should call instead of `quantile` three
    /// times. The sorted order is cached in a reusable scratch buffer
    /// and only rebuilt after a [`Self::record`] / [`Self::merge`], so
    /// back-to-back scrapes of an idle accumulator are allocation- and
    /// sort-free.
    ///
    /// # Panics
    /// Panics if any `q` is outside `[0, 1]`.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<Duration> {
        for q in qs {
            assert!((0.0..=1.0).contains(q), "quantile must be in [0, 1]");
        }
        if self.latencies.is_empty() {
            return vec![Duration::ZERO; qs.len()];
        }
        // Recover from poison (a scrape must survive a panicked peer); a
        // poisoned cache may be mid-rebuild, so conservatively re-sort.
        let mut cache = match self.sorted.lock() {
            Ok(c) => c,
            Err(p) => {
                let mut c = p.into_inner();
                c.stale = true;
                c
            }
        };
        if cache.stale {
            let buf = &mut cache.buf;
            buf.clear();
            buf.extend_from_slice(&self.latencies);
            buf.sort_unstable();
            cache.stale = false;
        }
        debug_assert_eq!(cache.buf.len(), self.latencies.len());
        let sorted = &cache.buf;
        qs.iter()
            .map(|&q| {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            })
            .collect()
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.5)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Worst-case latency.
    pub fn max(&self) -> Duration {
        self.latencies
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Predictions per second of busy time (0 when nothing recorded).
    pub fn throughput(&self) -> f64 {
        let secs = self.total_busy.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.latencies.len() as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(ms: &[u64]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for (i, &m) in ms.iter().enumerate() {
            s.record(Duration::from_millis(m), i % 3 + 1);
        }
        s
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let s = stats_of(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(s.p50(), Duration::from_millis(5));
        assert_eq!(s.quantile(1.0), Duration::from_millis(10));
        assert_eq!(s.quantile(0.0), Duration::from_millis(1));
        assert_eq!(s.p95(), Duration::from_millis(10));
    }

    #[test]
    fn mean_and_max() {
        let s = stats_of(&[2, 4, 6]);
        assert_eq!(s.mean_latency(), Duration::from_millis(4));
        assert_eq!(s.max(), Duration::from_millis(6));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = LatencyStats::new();
        assert_eq!(s.p99(), Duration::ZERO);
        assert_eq!(s.mean_latency(), Duration::ZERO);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.mean_depth(), 0.0);
    }

    #[test]
    fn throughput_inverts_mean_latency() {
        let s = stats_of(&[10, 10, 10, 10]);
        assert!((s.throughput() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn mean_depth_tracks_records() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_millis(1), 2);
        s.record(Duration::from_millis(1), 4);
        assert!((s.mean_depth() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let _ = stats_of(&[1]).quantile(1.5);
    }

    #[test]
    fn batched_quantiles_match_individual_calls() {
        let s = stats_of(&[9, 1, 40, 3, 7, 7, 2, 100, 5, 6, 8, 11]);
        let batch = s.quantiles(&[0.0, 0.5, 0.95, 0.99, 1.0]);
        for (i, &q) in [0.0, 0.5, 0.95, 0.99, 1.0].iter().enumerate() {
            assert_eq!(batch[i], s.quantile(q), "q={q}");
        }
        assert_eq!(
            LatencyStats::new().quantiles(&[0.5, 0.99]),
            vec![Duration::ZERO; 2]
        );
    }

    #[test]
    fn merged_quantiles_equal_concatenated_quantiles() {
        // Three disjoint per-worker accumulators vs one accumulator fed
        // every sample: all quantiles and aggregates must coincide.
        let parts: [&[u64]; 3] = [&[9, 1, 40, 3], &[7, 7, 2], &[100, 5, 6, 8, 11]];
        let mut merged = LatencyStats::new();
        let mut concatenated = LatencyStats::new();
        for (w, part) in parts.iter().enumerate() {
            let mut worker = LatencyStats::new();
            for (i, &ms) in part.iter().enumerate() {
                worker.record(Duration::from_millis(ms), (w + i) % 4 + 1);
                concatenated.record(Duration::from_millis(ms), (w + i) % 4 + 1);
            }
            merged.merge(&worker);
        }
        assert_eq!(merged.count(), concatenated.count());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), concatenated.quantile(q), "q={q}");
        }
        assert_eq!(merged.mean_latency(), concatenated.mean_latency());
        assert_eq!(merged.max(), concatenated.max());
        assert!((merged.mean_depth() - concatenated.mean_depth()).abs() < 1e-12);
        assert!((merged.throughput() - concatenated.throughput()).abs() < 1e-9);
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let s = stats_of(&[4, 2, 9]);
        let mut from_empty = LatencyStats::new();
        from_empty.merge(&s);
        assert_eq!(from_empty.count(), 3);
        assert_eq!(from_empty.p50(), s.p50());
        let mut with_empty = s.clone();
        with_empty.merge(&LatencyStats::new());
        assert_eq!(with_empty.count(), 3);
        assert_eq!(with_empty.max(), s.max());
    }

    #[test]
    fn quantile_cache_invalidates_on_record_and_merge() {
        let mut s = stats_of(&[5, 1, 9]);
        assert_eq!(s.p50(), Duration::from_millis(5));
        // A repeated read reuses the cached sorted order.
        assert_eq!(s.p50(), Duration::from_millis(5));
        s.record(Duration::from_millis(2), 1);
        assert_eq!(s.quantile(1.0), Duration::from_millis(9));
        assert_eq!(s.p50(), Duration::from_millis(2), "new sample visible");
        s.merge(&stats_of(&[100, 200, 300, 400]));
        assert_eq!(s.quantile(1.0), Duration::from_millis(400));
        assert_eq!(s.count(), 8);
        // A clone carries consistent cache state of its own.
        let c = s.clone();
        assert_eq!(c.p50(), s.p50());
    }

    #[test]
    fn depth_histogram_tracks_records_and_merges() {
        let mut s = LatencyStats::new();
        assert!(s.depth_histogram().is_empty());
        s.record(Duration::from_millis(1), 1);
        s.record(Duration::from_millis(1), 3);
        s.record(Duration::from_millis(1), 1);
        assert_eq!(s.depth_histogram(), &[0, 2, 0, 1]);
        let mut other = LatencyStats::new();
        other.record(Duration::from_millis(2), 2);
        other.record(Duration::from_millis(2), 5);
        s.merge(&other);
        assert_eq!(s.depth_histogram(), &[0, 2, 1, 1, 0, 1]);
        // Histogram, count, and depth_sum stay mutually consistent.
        let total: u64 = s.depth_histogram().iter().sum();
        assert_eq!(total as usize, s.count());
        let weighted: u64 = s
            .depth_histogram()
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        assert!((s.mean_depth() - weighted as f64 / total as f64).abs() < 1e-12);
        // Clones carry the histogram.
        assert_eq!(s.clone().depth_histogram(), s.depth_histogram());
    }

    #[test]
    fn stage_times_merge_and_since() {
        let ms = Duration::from_millis;
        let mut a = StageTimes {
            propagation: ms(10),
            nap: ms(2),
            classification: ms(3),
        };
        assert_eq!(a.total(), ms(15));
        let earlier = a;
        a.merge(&StageTimes {
            propagation: ms(5),
            nap: ms(1),
            classification: ms(0),
        });
        let delta = a.since(&earlier);
        assert_eq!(
            delta,
            StageTimes {
                propagation: ms(5),
                nap: ms(1),
                classification: ms(0),
            }
        );
        // `since` against a newer snapshot saturates instead of
        // panicking — a torn pair of reads must not take metrics down.
        assert_eq!(earlier.since(&a).total(), Duration::ZERO);
        assert_eq!(StageTimes::default().total(), Duration::ZERO);
    }

    #[test]
    fn macs_breakdown_totals_and_merges() {
        let mut a = MacsBreakdown {
            propagation: 100,
            nap: 20,
            classification: 3,
            replication: 7,
        };
        assert_eq!(a.total(), 130);
        let b = MacsBreakdown {
            propagation: 1,
            nap: 2,
            classification: 3,
            replication: 4,
        };
        a.merge(&b);
        assert_eq!(
            a,
            MacsBreakdown {
                propagation: 101,
                nap: 22,
                classification: 6,
                replication: 11,
            }
        );
        assert_eq!(MacsBreakdown::default().total(), 0);
    }
}
