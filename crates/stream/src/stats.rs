//! Latency/throughput accounting for streaming inference.

use std::time::Duration;

/// Accumulates per-arrival latencies and exit depths.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    latencies: Vec<Duration>,
    depth_sum: u64,
    total_busy: Duration,
}

impl LatencyStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction's latency and exit depth.
    pub fn record(&mut self, latency: Duration, depth: usize) {
        self.latencies.push(latency);
        self.depth_sum += depth as u64;
        self.total_busy += latency;
    }

    /// Number of recorded predictions.
    pub fn count(&self) -> usize {
        self.latencies.len()
    }

    /// Mean exit depth.
    pub fn mean_depth(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.depth_sum as f64 / self.latencies.len() as f64
    }

    /// Mean latency.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.total_busy / self.latencies.len() as u32
    }

    /// The `q`-quantile latency (`q ∈ [0, 1]`), nearest-rank.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.5)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Worst-case latency.
    pub fn max(&self) -> Duration {
        self.latencies
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Predictions per second of busy time (0 when nothing recorded).
    pub fn throughput(&self) -> f64 {
        let secs = self.total_busy.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.latencies.len() as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(ms: &[u64]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for (i, &m) in ms.iter().enumerate() {
            s.record(Duration::from_millis(m), i % 3 + 1);
        }
        s
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let s = stats_of(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(s.p50(), Duration::from_millis(5));
        assert_eq!(s.quantile(1.0), Duration::from_millis(10));
        assert_eq!(s.quantile(0.0), Duration::from_millis(1));
        assert_eq!(s.p95(), Duration::from_millis(10));
    }

    #[test]
    fn mean_and_max() {
        let s = stats_of(&[2, 4, 6]);
        assert_eq!(s.mean_latency(), Duration::from_millis(4));
        assert_eq!(s.max(), Duration::from_millis(6));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = LatencyStats::new();
        assert_eq!(s.p99(), Duration::ZERO);
        assert_eq!(s.mean_latency(), Duration::ZERO);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.mean_depth(), 0.0);
    }

    #[test]
    fn throughput_inverts_mean_latency() {
        let s = stats_of(&[10, 10, 10, 10]);
        assert!((s.throughput() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn mean_depth_tracks_records() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_millis(1), 2);
        s.record(Duration::from_millis(1), 4);
        assert!((s.mean_depth() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let _ = stats_of(&[1]).quantile(1.5);
    }
}
