//! Per-arrival node-adaptive inference over a growing graph.
//!
//! [`StreamingEngine`] is Algorithm 1 re-hosted on [`DynamicGraph`]:
//! supporting frontiers come from BFS over adjacency lists, and the
//! normalized-adjacency weights `d̃_i^(γ−1) d̃_j^(−γ)` of Eq. (1) are
//! computed from the **current** degrees at propagation time, so arrivals
//! never invalidate a stored matrix. The stationary reference comes from
//! [`IncrementalStationary`] in `O(f)` per arrival.
//!
//! The workflow is ingest → flush:
//!
//! ```text
//! let id = engine.ingest(&features, &edges);   // O(deg) bookkeeping
//! ...
//! let preds = engine.flush(&cfg);              // micro-batch Algorithm 1
//! ```
//!
//! `flush` processes pending arrivals in `cfg.batch_size` micro-batches;
//! each prediction carries the personalized depth and the wall-clock
//! latency of its micro-batch (the time-to-answer a caller would see).

use crate::dynamic::DynamicGraph;
use crate::stationary::IncrementalStationary;
use crate::stats::{LatencyStats, MacsBreakdown, StageTimes};
use crate::sync::time::Instant;
use nai_core::active::EngineScratch;
use nai_core::config::{InferenceConfig, NapMode};
use nai_core::gates::GateSet;
use nai_core::napd;
use nai_core::upper_bound::spectral_bound;
use nai_graph::normalized_adjacency;
use nai_graph::Convolution;
use nai_linalg::ops::{argmax_rows, l2_distance};
use nai_linalg::DenseMatrix;
use nai_models::DepthClassifier;
use std::time::Duration;

/// One streaming prediction.
#[derive(Debug, Clone)]
pub struct StreamPrediction {
    /// Node id in the dynamic graph.
    pub node: u32,
    /// Predicted class.
    pub prediction: usize,
    /// Personalized propagation depth used.
    pub depth: usize,
    /// Wall-clock latency of the micro-batch that served this node.
    pub latency: Duration,
}

/// Contiguous-span stopwatch behind [`StreamingEngine::stage_times`]:
/// `infer_nodes_inner` calls one of the stage methods at each
/// attribution boundary (the same sites where [`MacsBreakdown`] is
/// charged), attributing everything since the previous boundary to
/// that stage. The spans partition the call's wall time — no interior
/// interval goes unattributed — so summed stage times track the engine
/// call's duration to within the cost of the `Instant::now` reads
/// themselves (a handful per propagation depth).
struct StageClock {
    mark: Instant,
    acc: StageTimes,
}

impl StageClock {
    fn new() -> Self {
        StageClock {
            mark: Instant::now(),
            acc: StageTimes::default(),
        }
    }

    fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let span = now.saturating_duration_since(self.mark);
        self.mark = now;
        span
    }

    fn propagation(&mut self) {
        let span = self.lap();
        self.acc.propagation += span;
    }

    fn nap(&mut self) {
        let span = self.lap();
        self.acc.nap += span;
    }

    fn classification(&mut self) {
        let span = self.lap();
        self.acc.classification += span;
    }
}

/// A deployed NAI model serving a stream of arrivals.
pub struct StreamingEngine {
    graph: DynamicGraph,
    stationary: IncrementalStationary,
    classifiers: Vec<DepthClassifier>,
    gates: Option<GateSet>,
    gamma: f32,
    lambda2: f32,
    pending: Vec<u32>,
    stats: LatencyStats,
    macs: MacsBreakdown,
    stage_times: StageTimes,
    /// Shared active-set workspace (same engine layer as
    /// `nai_core::inference::NaiEngine`); grows with the graph and is
    /// reused across flushes.
    scratch: EngineScratch,
}

impl StreamingEngine {
    /// Deploys trained classifiers (and optional gates) over a seed graph.
    ///
    /// λ₂ is estimated once from the seed graph and treated as a
    /// deployment constant thereafter (it drifts only with large
    /// topology changes; re-deploy to refresh it).
    ///
    /// # Panics
    /// Panics if no classifiers are supplied, they are not ordered by
    /// depth, or dimensions disagree with the graph.
    pub fn new(
        graph: DynamicGraph,
        classifiers: Vec<DepthClassifier>,
        gates: Option<GateSet>,
        gamma: f32,
    ) -> Self {
        let lambda2 = Self::estimate_lambda2(&graph, gamma);
        Self::with_lambda2(graph, classifiers, gates, gamma, lambda2)
    }

    /// [`Self::new`] with a precomputed λ₂ — the shard hand-off path:
    /// when many engine replicas are deployed from one checkpoint (e.g.
    /// the `nai-serve` worker pool), λ₂ is estimated once on the seed
    /// graph and handed to every shard instead of being re-estimated
    /// per replica.
    ///
    /// # Panics
    /// Panics if no classifiers are supplied or they are not ordered by
    /// depth.
    pub fn with_lambda2(
        graph: DynamicGraph,
        classifiers: Vec<DepthClassifier>,
        gates: Option<GateSet>,
        gamma: f32,
        lambda2: f32,
    ) -> Self {
        assert!(!classifiers.is_empty(), "need at least one classifier");
        for (i, c) in classifiers.iter().enumerate() {
            assert_eq!(c.depth(), i + 1, "classifiers must be ordered by depth");
        }
        let stationary = IncrementalStationary::from_dynamic(&graph, gamma);
        Self {
            graph,
            stationary,
            classifiers,
            gates,
            gamma,
            lambda2,
            pending: Vec::new(),
            stats: LatencyStats::new(),
            macs: MacsBreakdown::default(),
            stage_times: StageTimes::default(),
            scratch: EngineScratch::new(),
        }
    }

    fn estimate_lambda2(graph: &DynamicGraph, gamma: f32) -> f32 {
        if graph.num_nodes() >= 2 {
            let csr = graph.snapshot_csr();
            let norm = normalized_adjacency(&csr, Convolution::Gamma(gamma));
            norm.lambda2_estimate(100, 0x57e4).min(0.999)
        } else {
            0.9
        }
    }

    /// Deploys a [`nai_core::checkpoint::ModelCheckpoint`] over a seed
    /// graph.
    ///
    /// # Panics
    /// Panics if the graph's feature dimension disagrees with the
    /// checkpoint.
    pub fn from_checkpoint(
        ckpt: &nai_core::checkpoint::ModelCheckpoint,
        graph: DynamicGraph,
    ) -> Self {
        assert_eq!(
            graph.feature_dim(),
            ckpt.feature_dim,
            "graph feature dim must match checkpoint"
        );
        Self::new(
            graph,
            ckpt.build_classifiers(),
            ckpt.build_gates(),
            ckpt.gamma,
        )
    }

    /// [`Self::from_checkpoint`] with a precomputed λ₂ (see
    /// [`Self::with_lambda2`]).
    ///
    /// # Panics
    /// Panics if the graph's feature dimension disagrees with the
    /// checkpoint.
    pub fn from_checkpoint_with_lambda2(
        ckpt: &nai_core::checkpoint::ModelCheckpoint,
        graph: DynamicGraph,
        lambda2: f32,
    ) -> Self {
        assert_eq!(
            graph.feature_dim(),
            ckpt.feature_dim,
            "graph feature dim must match checkpoint"
        );
        Self::with_lambda2(
            graph,
            ckpt.build_classifiers(),
            ckpt.build_gates(),
            ckpt.gamma,
            lambda2,
        )
    }

    /// Builds `n` independent engine replicas ("shards") from one
    /// checkpoint and seed graph: λ₂ is estimated once, then every
    /// shard gets its own graph copy, stationary accumulators, and
    /// scratch. Shards share no state at runtime; the `nai-serve`
    /// layer keeps them convergent by broadcasting every mutation to
    /// every replica in one global sequence order (see
    /// [`Self::apply_replicated_ingest`] /
    /// [`Self::apply_replicated_edge`]), so any replica can serve any
    /// node.
    ///
    /// # Panics
    /// Panics if `n == 0` or the graph's feature dimension disagrees
    /// with the checkpoint.
    pub fn shard_replicas(
        ckpt: &nai_core::checkpoint::ModelCheckpoint,
        seed: &DynamicGraph,
        n: usize,
    ) -> Vec<Self> {
        assert!(n > 0, "need at least one shard");
        let lambda2 = Self::estimate_lambda2(seed, ckpt.gamma);
        (0..n)
            .map(|_| Self::from_checkpoint_with_lambda2(ckpt, seed.clone(), lambda2))
            .collect()
    }

    /// Highest trained depth `k`.
    pub fn k(&self) -> usize {
        self.classifiers.len()
    }

    /// The current graph state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Latency statistics over everything flushed so far.
    pub fn stats(&self) -> &LatencyStats {
        &self.stats
    }

    /// Cumulative propagation + NAP + classification MACs.
    pub fn macs_total(&self) -> u64 {
        self.macs.total()
    }

    /// Cumulative MACs split by pipeline stage (exported per worker by
    /// the serving layer's `/metrics`).
    pub fn macs_breakdown(&self) -> MacsBreakdown {
        self.macs
    }

    /// Cumulative wall time split by pipeline stage, attributed at the
    /// same sites as [`Self::macs_breakdown`]. Like the MAC counters
    /// this is monotone and survives [`Self::reset_stats`]: the serving
    /// layer snapshots it around each coalesced call and diffs with
    /// [`StageTimes::since`] to cost the batch it just ran.
    pub fn stage_times(&self) -> StageTimes {
        self.stage_times
    }

    /// λ₂ estimated (or handed over) at deployment.
    pub fn lambda2(&self) -> f32 {
        self.lambda2
    }

    /// Clears accumulated latency statistics.
    pub fn reset_stats(&mut self) {
        self.stats = LatencyStats::new();
    }

    /// Ids queued for the next [`Self::flush`].
    pub fn pending(&self) -> &[u32] {
        &self.pending
    }

    /// Ingests an arriving node: appends it to the graph, updates the
    /// stationary accumulators, and queues it for inference. Returns the
    /// assigned node id.
    ///
    /// # Panics
    /// Panics on wrong feature length or unknown neighbor ids.
    pub fn ingest(&mut self, features: &[f32], neighbors: &[u32]) -> u32 {
        let id = self.apply_node_arrival(features, neighbors);
        self.pending.push(id);
        id
    }

    /// Applies a node arrival replicated from the serving layer's
    /// sequenced mutation broadcast: identical state change to
    /// [`Self::ingest`] (graph append + stationary accumulator update),
    /// but the node is **not** queued for inference — exactly one
    /// replica (the one holding the client's reply handle) pays for the
    /// prediction; every other replica only needs the state. The op was
    /// validated once when it was sequenced, so this path adds no
    /// checks beyond the graph's structural assertions, and no per-shard
    /// λ₂ work (λ₂ is a deployment constant handed over at
    /// [`Self::shard_replicas`] time).
    ///
    /// # Panics
    /// Panics on wrong feature length or unknown neighbor ids.
    pub fn apply_replicated_ingest(&mut self, features: &[f32], neighbors: &[u32]) -> u32 {
        self.apply_node_arrival(features, neighbors)
    }

    fn apply_node_arrival(&mut self, features: &[f32], neighbors: &[u32]) -> u32 {
        let mut uniq: Vec<u32> = neighbors.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        let old: Vec<(usize, Vec<f32>)> = uniq
            .iter()
            .map(|&u| (self.graph.degree(u), self.graph.feature(u).to_vec()))
            .collect();
        let id = self.graph.add_node(features, &uniq);
        let old_refs: Vec<(usize, &[f32])> = old.iter().map(|(d, x)| (*d, x.as_slice())).collect();
        self.stationary.on_add_node(features, &old_refs);
        // One weighted row for the arrival plus one degree-delta
        // correction per touched neighbor, each O(f).
        self.macs.replication += (uniq.len() as u64 + 1) * self.graph.feature_dim() as u64;
        id
    }

    /// Observes an edge arrival between existing nodes (e.g. a new
    /// interaction between known users). Returns `false` when the edge
    /// already existed (an `O(log d)` sorted-adjacency probe).
    ///
    /// # Panics
    /// Panics on out-of-range ids or a self-loop.
    pub fn observe_edge(&mut self, u: u32, v: u32) -> bool {
        if self.graph.has_edge(u, v) {
            return false;
        }
        let (du, dv) = (self.graph.degree(u), self.graph.degree(v));
        let (xu, xv) = (
            self.graph.feature(u).to_vec(),
            self.graph.feature(v).to_vec(),
        );
        let added = self.graph.add_edge(u, v);
        debug_assert!(added);
        self.stationary.on_add_edge(&xu, du, &xv, dv);
        // Two endpoint degree-delta corrections, each O(f).
        self.macs.replication += 2 * self.graph.feature_dim() as u64;
        true
    }

    /// [`Self::observe_edge`] under replicated apply — the duplicate
    /// probe must run on every replica (all replicas hold identical
    /// state, so the `added` outcome agrees everywhere), which makes
    /// the replicated path the same as the direct one; the distinct
    /// name documents intent at the serving call sites.
    #[inline]
    pub fn apply_replicated_edge(&mut self, u: u32, v: u32) -> bool {
        self.observe_edge(u, v)
    }

    /// Runs node-adaptive inference on all pending arrivals in micro-
    /// batches of `cfg.batch_size`, recording per-arrival latency.
    ///
    /// # Panics
    /// Panics if the config fails validation or requests gates the engine
    /// does not have.
    pub fn flush(&mut self, cfg: &InferenceConfig) -> Vec<StreamPrediction> {
        let pending = std::mem::take(&mut self.pending);
        let mut out = Vec::with_capacity(pending.len());
        for chunk in pending.chunks(cfg.batch_size.max(1)) {
            let start = Instant::now();
            let results = self.infer_nodes(chunk, cfg);
            let elapsed = start.elapsed();
            for (t, &node) in chunk.iter().enumerate() {
                let (prediction, depth) = results[t];
                self.stats.record(elapsed, depth);
                out.push(StreamPrediction {
                    node,
                    prediction,
                    depth,
                    latency: elapsed,
                });
            }
        }
        out
    }

    /// Algorithm 1 over the current graph for explicit `nodes` (they must
    /// already be in the graph). Returns `(prediction, depth)` per node.
    ///
    /// Runs on the same [`nai_core::active`] engine as the static
    /// `NaiEngine`: shared exit bookkeeping (`ActiveSet`), stamped
    /// column-map support lookups, full-width history with one row
    /// indirection, and in-place incremental hop-set shrinking — only
    /// the propagation arithmetic (degree-derived weights) differs.
    ///
    /// # Panics
    /// Panics on invalid config, missing gates, or unknown node ids.
    pub fn infer_nodes(&mut self, nodes: &[u32], cfg: &InferenceConfig) -> Vec<(usize, usize)> {
        // nai-lint: allow(hot-path-panic) -- deliberate precondition assert
        // (documented # Panics): a bad config must abort before inference.
        cfg.validate(self.k()).expect("invalid inference config");
        if matches!(cfg.nap, NapMode::Gate) {
            assert!(
                self.gates.is_some(),
                "gate NAP requested but the engine has no trained gates"
            );
        }
        if nodes.is_empty() {
            return Vec::new();
        }
        // Detach the scratch so the borrow checker can see it is disjoint
        // from the graph/stationary state it is used alongside.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut clock = StageClock::new();
        let results = self.infer_nodes_inner(nodes, cfg, &mut scratch, &mut clock);
        self.scratch = scratch;
        // Merged here, not inside `infer_nodes_inner`, so the all-exited
        // early return cannot drop a partially accumulated breakdown.
        self.stage_times.merge(&clock.acc);
        results
    }

    fn infer_nodes_inner(
        &mut self,
        nodes: &[u32],
        cfg: &InferenceConfig,
        scratch: &mut EngineScratch,
        clock: &mut StageClock,
    ) -> Vec<(usize, usize)> {
        let n = self.graph.num_nodes();
        let f = self.graph.feature_dim();
        let mut results = vec![(usize::MAX, 0usize); nodes.len()];
        scratch.begin_batch(n, nodes, cfg.t_max, f);
        for &v in nodes {
            assert!((v as usize) < n, "node {v} out of range");
        }

        // Stationary rows (Algorithm 1 line 2) — O(f) per node thanks to
        // the incremental accumulators. Indexed by original batch row,
        // written into the reusable scratch buffer.
        self.stationary
            .rows_into(&self.graph, nodes, &mut scratch.x_inf);
        clock.propagation();

        // NAP_u: depths fixed from Eq. (10) before propagation, indexed
        // by original batch row.
        let assigned: Vec<usize> = match cfg.nap {
            NapMode::UpperBound { ts } => {
                self.macs.nap += nodes.len() as u64 * 4;
                let total = self.graph.total_tilde_degree();
                nodes
                    .iter()
                    .map(|&v| {
                        let degree = self.graph.degree(v) as f32;
                        match spectral_bound(ts, degree, total, self.lambda2) {
                            Some(b) => (b.ceil() as usize).clamp(cfg.t_min, cfg.t_max),
                            None => cfg.t_max,
                        }
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        clock.nap();

        // Supporting hop sets (line 3) over the dynamic adjacency lists.
        let graph = &self.graph;
        scratch.bfs.hop_sets_by_into(
            |u| graph.neighbors(u).iter().copied(),
            nodes,
            cfg.t_max,
            &mut scratch.plan.sets,
        );
        scratch.plan.init_support();

        for (r, &v) in nodes.iter().enumerate() {
            scratch.history[0]
                .row_mut(r)
                .copy_from_slice(self.graph.feature(v));
        }
        scratch
            .h_prev
            .reset_for_overwrite(scratch.plan.support().len(), f);
        for (t, &g) in scratch.plan.support().iter().enumerate() {
            scratch
                .h_prev
                .row_mut(t)
                .copy_from_slice(self.graph.feature(g));
        }

        for l in 1..=cfg.t_max {
            let support_l = std::mem::take(&mut scratch.plan.sets[l]);
            let step_macs = self.propagate_step_into(
                &support_l,
                scratch.plan.col_map(),
                &scratch.h_prev,
                &mut scratch.h_next,
                cfg.parallel_spmm,
            );
            self.macs.propagation += step_macs;
            scratch.plan.advance(support_l);

            scratch.active_rows.clear();
            for &g in scratch.active.nodes() {
                let local = scratch.plan.local(g);
                debug_assert_ne!(local, u32::MAX, "active ⊆ every hop set");
                scratch.active_rows.push(local as usize);
            }
            let hist_l = &mut scratch.history[l];
            for (a, &row) in scratch.active_rows.iter().enumerate() {
                hist_l
                    .row_mut(scratch.active.origs()[a])
                    .copy_from_slice(scratch.h_next.row(row));
            }
            clock.propagation();

            let at_final = l == cfg.t_max;
            scratch.exit_mask.clear();
            scratch.exit_mask.resize(scratch.active.len(), at_final);
            if !at_final && l >= cfg.t_min {
                match cfg.nap {
                    NapMode::Fixed => {}
                    NapMode::Distance { ts } => {
                        for a in 0..scratch.active.len() {
                            let cur = scratch.h_next.row(scratch.active_rows[a]);
                            let stat = scratch.x_inf.row(scratch.active.origs()[a]);
                            scratch.exit_mask[a] = l2_distance(cur, stat) < ts;
                        }
                        self.macs.nap += scratch.active.len() as u64 * napd::macs_per_node(f);
                    }
                    NapMode::Gate => {
                        // nai-lint: allow(hot-path-panic) -- Gate mode asserts
                        // gates.is_some() at function entry; unreachable here.
                        let gates = self.gates.as_ref().expect("validated above");
                        if l < gates.k() {
                            let (h_next, x_inf) = (&scratch.h_next, &scratch.x_inf);
                            let rows = scratch
                                .active_rows
                                .iter()
                                .zip(scratch.active.origs())
                                .map(|(&r, &o)| (h_next.row(r), x_inf.row(o)));
                            gates.decide_rows(l, rows, &mut scratch.exit_mask);
                            self.macs.nap += scratch.active.len() as u64 * gates.macs_per_node();
                        }
                    }
                    NapMode::UpperBound { .. } => {
                        for a in 0..scratch.active.len() {
                            scratch.exit_mask[a] = assigned[scratch.active.origs()[a]] == l;
                        }
                    }
                }
            }
            clock.nap();

            if scratch.exit_mask.iter().any(|&e| e) {
                let exited = scratch.active.apply_exits(&scratch.exit_mask);
                let clf = &self.classifiers[l - 1];
                let exit_feats: Vec<DenseMatrix> = scratch.history[..=l]
                    .iter()
                    // nai-lint: allow(hot-path-panic) -- `exited` is a subset of
                    // the active set, which indexes these same history matrices.
                    .map(|m| m.gather_rows(exited).expect("exit rows"))
                    .collect();
                let logits = clf.forward(&exit_feats);
                self.macs.classification += exited.len() as u64 * clf.macs_per_node();
                let preds = argmax_rows(&logits);
                for (t, &orig) in exited.iter().enumerate() {
                    results[orig] = (preds[t], l);
                }
                clock.classification();

                if scratch.active.is_empty() {
                    scratch.plan.finish();
                    clock.propagation();
                    return results;
                }
                if l < cfg.t_max {
                    let graph = &self.graph;
                    scratch.bfs.shrink_hop_sets_by(
                        |u| graph.neighbors(u).iter().copied(),
                        scratch.active.nodes(),
                        &mut scratch.plan.sets[l + 1..=cfg.t_max],
                        cfg.t_max - l - 1,
                    );
                }
                clock.propagation();
            }

            std::mem::swap(&mut scratch.h_prev, &mut scratch.h_next);
        }
        scratch.plan.finish();
        clock.propagation();
        results
    }

    /// One propagation step `H_l[i] = Σ_{j ∈ Ñ(i)} Â_ij H_{l−1}[j]` with
    /// weights derived from current degrees (self-loop included), written
    /// into the reusable `out` buffer.
    ///
    /// When `parallel` is set, output rows are filled concurrently via
    /// `nai_linalg::parallel` (honoring `InferenceConfig::parallel_spmm`);
    /// each row is an independent reduction, so results and the returned
    /// MAC count are bit-identical with the serial path. Small frontiers
    /// fall back to the serial loop.
    fn propagate_step_into(
        &self,
        support_l: &[u32],
        col_map: &[u32],
        h_prev: &DenseMatrix,
        out: &mut DenseMatrix,
        parallel: bool,
    ) -> u64 {
        let f = h_prev.cols();
        let gamma = self.gamma;
        out.reset_zeroed(support_l.len(), f);
        let prev = h_prev.as_slice();
        // Self-loop + one term per neighbor, every one mapped by the
        // nesting invariant — the MAC count is exact without a pass over
        // the features.
        let macs: u64 = support_l
            .iter()
            .map(|&gi| (self.graph.degree(gi) as u64 + 1) * f as u64)
            .sum();
        let fill_row = |gi: u32, orow: &mut [f32]| {
            let di = (self.graph.degree(gi) + 1) as f32;
            let left = di.powf(gamma - 1.0);
            // Self-loop term of Ã = A + I.
            let self_local = col_map[gi as usize];
            debug_assert_ne!(self_local, u32::MAX, "support nesting violated");
            let w_self = left * di.powf(-gamma);
            let src = &prev[self_local as usize * f..(self_local as usize + 1) * f];
            for (o, &x) in orow.iter_mut().zip(src) {
                *o += w_self * x;
            }
            for &j in self.graph.neighbors(gi) {
                let local = col_map[j as usize];
                debug_assert_ne!(local, u32::MAX, "support nesting violated");
                let w = left * ((self.graph.degree(j) + 1) as f32).powf(-gamma);
                let src = &prev[local as usize * f..(local as usize + 1) * f];
                for (o, &x) in orow.iter_mut().zip(src) {
                    *o += w * x;
                }
            }
        };
        let threads = if parallel && f > 0 && !support_l.is_empty() {
            let avg_cost = (macs as usize / support_l.len()).max(1);
            nai_linalg::parallel::thread_count(support_l.len() * avg_cost)
        } else {
            1
        };
        if threads <= 1 {
            for (t, &gi) in support_l.iter().enumerate() {
                fill_row(gi, out.row_mut(t));
            }
            return macs;
        }
        let avg_cost = (macs as usize / support_l.len()).max(1);
        nai_linalg::parallel::par_rows_mut(out.as_mut_slice(), f, avg_cost, |row0, chunk| {
            for (off, orow) in chunk.chunks_mut(f).enumerate() {
                fill_row(support_l[row0 + off], orow);
            }
        });
        macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_core::config::PipelineConfig;
    use nai_core::pipeline::NaiPipeline;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::{Graph, InductiveSplit};
    use nai_models::ModelKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained(n: usize, k: usize) -> (Graph, InductiveSplit, nai_core::pipeline::TrainedNai) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: n,
                num_classes: 3,
                feature_dim: 8,
                avg_degree: 8.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(31),
        );
        let split = InductiveSplit::random(n, 0.6, 0.2, &mut StdRng::seed_from_u64(32));
        let cfg = PipelineConfig {
            k,
            hidden: vec![16],
            epochs: 25,
            patience: 8,
            gate_epochs: 8,
            distill: nai_core::config::DistillConfig {
                epochs: 8,
                ensemble_r: 2,
                ..Default::default()
            },
            ..PipelineConfig::default()
        };
        let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, true);
        (g, split, t)
    }

    fn engine_from(t: &nai_core::pipeline::TrainedNai, g: &Graph) -> StreamingEngine {
        let ckpt = nai_core::checkpoint::ModelCheckpoint::from_engine(&t.engine, 0.5);
        StreamingEngine::from_checkpoint(&ckpt, DynamicGraph::from_graph(g))
    }

    #[test]
    fn static_nodes_match_core_engine_across_nap_modes() {
        // With no arrivals, the streaming engine must agree with the
        // static NaiEngine on the same graph, for every NAP mode.
        //
        // Fixed-depth modes share the propagation arithmetic exactly, so
        // they must match bit-for-bit. Threshold modes (distance, gate,
        // upper-bound) compare against the stationary state, which the
        // two engines compute by different algorithms (incremental f64
        // accumulators vs. the per-component direct form — equal only to
        // ~1e-4, see `IncrementalStationary`). A node whose exit score
        // sits within float noise of the threshold may therefore exit at
        // a different layer; such flips must be rare and must always
        // come with a different depth.
        let (g, split, t) = trained(300, 3);
        let mut se = engine_from(&t, &g);
        for cfg in [
            InferenceConfig::fixed(3),
            InferenceConfig::fixed(2),
            InferenceConfig::distance(0.5, 1, 3),
            InferenceConfig::gate(1, 3),
            InferenceConfig::upper_bound(0.5, 1, 3),
        ] {
            let stat = t.engine.infer(&split.test, &g.labels, &cfg);
            let stream = se.infer_nodes(&split.test, &cfg);
            let (preds, depths): (Vec<usize>, Vec<usize>) = stream.into_iter().unzip();
            assert_eq!(stat.predictions.len(), preds.len(), "{:?}", cfg.nap);
            if matches!(cfg.nap, NapMode::Fixed) {
                assert_eq!(stat.predictions, preds, "{:?}", cfg.nap);
                assert_eq!(stat.depths, depths, "{:?}", cfg.nap);
                continue;
            }
            let mut flips = 0usize;
            for i in 0..preds.len() {
                if stat.predictions[i] == preds[i] && stat.depths[i] == depths[i] {
                    continue;
                }
                // A flipped node need not land one layer away: missing a
                // near-threshold exit at layer l means it continues until
                // the next layer whose check fires, possibly the forced
                // exit at t_max. The required signature is only that the
                // depths differ.
                assert_ne!(
                    stat.depths[i], depths[i],
                    "{:?}: node {i} disagrees on prediction ({} vs {}) without a \
                     depth flip — not a threshold rounding artifact",
                    cfg.nap, stat.predictions[i], preds[i],
                );
                flips += 1;
            }
            let budget = preds.len().div_ceil(50); // ≤ 2% of the batch
            assert!(
                flips <= budget,
                "{:?}: {flips} threshold flips out of {} nodes (budget {budget})",
                cfg.nap,
                preds.len(),
            );
        }
    }

    #[test]
    fn ingest_then_flush_returns_predictions() {
        let (g, _, t) = trained(200, 3);
        let mut se = engine_from(&t, &g);
        let mut rng = StdRng::seed_from_u64(77);
        let mut ids = Vec::new();
        for _ in 0..20 {
            let feats: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let nbrs: Vec<u32> = (0..3).map(|_| rng.gen_range(0..200u32)).collect();
            ids.push(se.ingest(&feats, &nbrs));
        }
        assert_eq!(se.pending().len(), 20);
        let preds = se.flush(&InferenceConfig::distance(0.5, 1, 3));
        assert_eq!(preds.len(), 20);
        assert!(se.pending().is_empty());
        for (p, &id) in preds.iter().zip(&ids) {
            assert_eq!(p.node, id);
            assert!(p.prediction < 3);
            assert!((1..=3).contains(&p.depth));
        }
        assert_eq!(se.stats().count(), 20);
        assert!(se.macs_total() > 0);
    }

    #[test]
    fn flushed_arrivals_match_static_engine_on_final_graph() {
        // Ingest all arrivals, then flush once: predictions must equal a
        // static engine deployed on the final materialized graph.
        let (g, _, t) = trained(250, 3);
        let mut se = engine_from(&t, &g);
        let mut rng = StdRng::seed_from_u64(123);
        let mut arrivals = Vec::new();
        for _ in 0..15 {
            let feats: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut nbrs: Vec<u32> = (0..rng.gen_range(1..4))
                .map(|_| rng.gen_range(0..250u32))
                .collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            arrivals.push(se.ingest(&feats, &nbrs));
        }
        let cfg = InferenceConfig::distance(0.4, 1, 3);
        let stream = se.flush(&cfg);

        // Static replay on the final graph.
        let labels: Vec<u32> = (0..se.graph().num_nodes())
            .map(|i| (i % 3) as u32)
            .collect();
        let final_graph = se.graph().snapshot_graph(labels.clone(), 3);
        let comps = nai_graph::components::connected_components(&final_graph.adj);
        if comps.count != 1 {
            return; // stationary normalizers only comparable when connected
        }
        let ckpt = nai_core::checkpoint::ModelCheckpoint::from_engine(&t.engine, 0.5);
        let static_engine = ckpt.deploy(&final_graph);
        let stat = static_engine.infer(&arrivals, &labels, &cfg);
        let stream_preds: Vec<usize> = stream.iter().map(|p| p.prediction).collect();
        let stream_depths: Vec<usize> = stream.iter().map(|p| p.depth).collect();
        assert_eq!(stat.predictions, stream_preds);
        assert_eq!(stat.depths, stream_depths);
    }

    #[test]
    fn observe_edge_changes_later_predictions_only() {
        let (g, _, t) = trained(150, 2);
        let mut se = engine_from(&t, &g);
        let u = 0u32;
        let v = (1..150u32).find(|&x| !se.graph().has_edge(u, x)).unwrap();
        let before_edges = se.graph().num_edges();
        assert!(se.observe_edge(u, v));
        assert!(!se.observe_edge(u, v));
        assert_eq!(se.graph().num_edges(), before_edges + 1);
        // The engine still answers (graph consistency after edge arrival).
        let res = se.infer_nodes(&[u, v], &InferenceConfig::fixed(2));
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn micro_batching_respects_batch_size() {
        let (g, _, t) = trained(150, 2);
        let mut se = engine_from(&t, &g);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let feats: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            se.ingest(&feats, &[0, 1]);
        }
        let cfg = InferenceConfig {
            batch_size: 3,
            ..InferenceConfig::fixed(2)
        };
        let preds = se.flush(&cfg);
        assert_eq!(preds.len(), 10);
        // 10 arrivals in batches of 3 → 4 distinct micro-batch latencies
        // at most; every node in one batch shares its latency.
        let distinct: std::collections::HashSet<u128> =
            preds.iter().map(|p| p.latency.as_nanos()).collect();
        assert!(distinct.len() <= 4);
    }

    #[test]
    fn isolated_arrival_is_classified() {
        let (g, _, t) = trained(120, 2);
        let mut se = engine_from(&t, &g);
        se.ingest(&[0.3; 8], &[]);
        let preds = se.flush(&InferenceConfig::distance(0.5, 1, 2));
        assert_eq!(preds.len(), 1);
        assert!(preds[0].prediction < 3);
    }

    #[test]
    fn gate_mode_without_gates_panics_in_stream_too() {
        let (g, _, t) = trained(100, 2);
        let ckpt = nai_core::checkpoint::ModelCheckpoint::from_engine(&t.engine, 0.5);
        let mut se = StreamingEngine::new(
            DynamicGraph::from_graph(&g),
            ckpt.build_classifiers(),
            None,
            0.5,
        );
        se.ingest(&[0.0; 8], &[0]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            se.flush(&InferenceConfig::gate(1, 2))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn flush_with_nothing_pending_is_empty() {
        let (g, _, t) = trained(100, 2);
        let mut se = engine_from(&t, &g);
        let preds = se.flush(&InferenceConfig::fixed(2));
        assert!(preds.is_empty());
        assert_eq!(se.stats().count(), 0);
    }

    #[test]
    fn duplicate_neighbor_ids_in_ingest_collapse() {
        let (g, _, t) = trained(100, 2);
        let mut se = engine_from(&t, &g);
        let id = se.ingest(&[0.2; 8], &[3, 3, 3, 7]);
        assert_eq!(se.graph().degree(id), 2);
        let preds = se.flush(&InferenceConfig::fixed(2));
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn parallel_spmm_knob_is_bit_identical_in_stream() {
        let (g, split, t) = trained(300, 3);
        let mut serial_engine = engine_from(&t, &g);
        let mut parallel_engine = engine_from(&t, &g);
        for cfg in [
            InferenceConfig::fixed(3),
            InferenceConfig::distance(0.5, 1, 3),
        ] {
            let a = serial_engine.infer_nodes(&split.test, &cfg);
            let b = parallel_engine.infer_nodes(&split.test, &cfg.with_parallel_spmm(true));
            assert_eq!(a, b, "{:?}", cfg.nap);
        }
        assert_eq!(serial_engine.macs_total(), parallel_engine.macs_total());
    }

    #[test]
    fn upper_bound_mode_streams() {
        let (g, _, t) = trained(150, 3);
        let mut se = engine_from(&t, &g);
        for i in 0..6u32 {
            se.ingest(&[0.1 * i as f32; 8], &[i, i + 1]);
        }
        let preds = se.flush(&InferenceConfig::upper_bound(0.5, 1, 3));
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|p| (1..=3).contains(&p.depth)));
    }

    #[test]
    fn arrivals_see_previous_arrivals() {
        // A second arrival may attach to the first one — ids are live
        // immediately.
        let (g, _, t) = trained(80, 2);
        let mut se = engine_from(&t, &g);
        let a = se.ingest(&[0.5; 8], &[0]);
        let b = se.ingest(&[0.6; 8], &[a]);
        assert!(se.graph().has_edge(a, b));
        let preds = se.flush(&InferenceConfig::distance(0.5, 1, 2));
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn shard_replicas_share_lambda2_and_agree_with_solo_engine() {
        let (g, split, t) = trained(200, 2);
        let ckpt = nai_core::checkpoint::ModelCheckpoint::from_engine(&t.engine, 0.5);
        let seed = DynamicGraph::from_graph(&g);
        let mut shards = StreamingEngine::shard_replicas(&ckpt, &seed, 3);
        assert_eq!(shards.len(), 3);
        let mut solo = StreamingEngine::from_checkpoint(&ckpt, seed);
        let solo_l2 = solo.lambda2();
        let cfg = InferenceConfig::distance(0.5, 1, 2);
        let reference = solo.infer_nodes(&split.test, &cfg);
        for shard in &mut shards {
            // λ₂ handed over, not re-estimated — bit-equal across shards.
            assert_eq!(shard.lambda2(), solo_l2);
            assert_eq!(shard.infer_nodes(&split.test, &cfg), reference);
        }
        // Shards are independent: a mutation on one is invisible to the
        // others.
        let before = shards[1].graph().num_nodes();
        shards[0].ingest(&[0.1; 8], &[0, 1]);
        assert_eq!(shards[1].graph().num_nodes(), before);
        assert_eq!(shards[0].graph().num_nodes(), before + 1);
    }

    #[test]
    fn replicated_apply_matches_direct_mutations_without_pending() {
        // A replica fed apply_replicated_* must end in the same graph +
        // stationary state as an engine fed the direct mutation path,
        // with the same replication MAC count — only the inference
        // queueing differs.
        let (g, _, t) = trained(120, 2);
        let mut direct = engine_from(&t, &g);
        let mut replica = engine_from(&t, &g);
        let id_d = direct.ingest(&[0.3; 8], &[0, 4, 4, 9]);
        let id_r = replica.apply_replicated_ingest(&[0.3; 8], &[0, 4, 4, 9]);
        assert_eq!(id_d, id_r);
        let v = (1..120u32)
            .find(|&x| !direct.graph().has_edge(0, x))
            .unwrap();
        assert!(direct.observe_edge(0, v));
        assert!(replica.apply_replicated_edge(0, v));
        assert!(!replica.apply_replicated_edge(0, v), "dedup agrees");
        assert!(!direct.observe_edge(0, v));

        assert_eq!(direct.pending(), &[id_d], "direct path queues inference");
        assert!(replica.pending().is_empty(), "replicated path does not");
        assert!(direct.macs_breakdown().replication > 0);
        assert_eq!(
            direct.macs_breakdown().replication,
            replica.macs_breakdown().replication,
            "identical mutation work on both paths"
        );
        // State convergence: identical adjacency and stationary rows.
        let (a, b) = (
            direct.graph().snapshot_csr(),
            replica.graph().snapshot_csr(),
        );
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..direct.graph().num_nodes() {
            assert_eq!(a.row_indices(i), b.row_indices(i), "row {i}");
        }
        // The direct engine's flush answers only its own pending node;
        // afterwards both replicas classify the ingested node equally.
        let cfg = InferenceConfig::distance(0.5, 1, 2);
        let preds = direct.flush(&cfg);
        assert_eq!(preds.len(), 1);
        let on_replica = replica.infer_nodes(&[id_r], &cfg);
        assert_eq!(
            (preds[0].prediction, preds[0].depth),
            on_replica[0],
            "replica answers the replicated node identically"
        );
    }

    #[test]
    fn macs_breakdown_sums_to_total_and_covers_stages() {
        let (g, split, t) = trained(200, 3);
        let mut se = engine_from(&t, &g);
        assert_eq!(se.macs_breakdown(), crate::stats::MacsBreakdown::default());
        se.infer_nodes(&split.test, &InferenceConfig::distance(0.5, 1, 3));
        let b = se.macs_breakdown();
        assert_eq!(b.total(), se.macs_total());
        assert!(b.propagation > 0, "propagation MACs counted");
        assert!(b.nap > 0, "distance NAP MACs counted");
        assert!(b.classification > 0, "classifier MACs counted");
        // Fixed mode spends nothing on NAP decisions.
        let mut fixed = engine_from(&t, &g);
        fixed.infer_nodes(&split.test, &InferenceConfig::fixed(2));
        assert_eq!(fixed.macs_breakdown().nap, 0);
        assert_eq!(fixed.macs_breakdown().total(), fixed.macs_total());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let (g, _, t) = trained(100, 2);
        let mut se = engine_from(&t, &g);
        se.ingest(&[0.1; 8], &[0, 1]);
        se.flush(&InferenceConfig::fixed(2));
        assert_eq!(se.stats().count(), 1);
        assert!(se.stats().mean_depth() > 0.0);
        se.reset_stats();
        assert_eq!(se.stats().count(), 0);
    }

    #[test]
    fn stage_times_accumulate_and_survive_reset() {
        let (g, split, t) = trained(200, 3);
        let mut se = engine_from(&t, &g);
        assert_eq!(se.stage_times(), StageTimes::default());
        se.infer_nodes(&split.test, &InferenceConfig::distance(0.5, 1, 3));
        let first = se.stage_times();
        assert!(first.propagation > Duration::ZERO, "propagation timed");
        assert!(
            first.classification > Duration::ZERO,
            "classification timed"
        );
        assert!(first.total() > Duration::ZERO);
        // Monotone across calls, and the per-call delta is exactly what
        // `since` reports — the serving layer's batch-attribution
        // contract.
        se.infer_nodes(&split.test[..4], &InferenceConfig::distance(0.5, 1, 3));
        let second = se.stage_times();
        assert!(second.total() >= first.total());
        assert_eq!(second.since(&first).total(), second.total() - first.total());
        // Cumulative like MACs: reset_stats clears latencies, not this.
        se.reset_stats();
        assert_eq!(se.stage_times(), second);
    }
}
