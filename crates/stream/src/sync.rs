//! Sync facade: the one place in `nai-stream` that names a mutex type.
//!
//! Normal builds re-export `std::sync`; under `--cfg nai_model` the types
//! come from the workspace's `loom` model checker instead, so concurrency
//! tests can exhaustively explore interleavings of code that uses these
//! primitives. Code in this crate must import sync primitives from here,
//! never from `std::sync` directly (the serve crate enforces the same rule
//! with a CI grep lint).

#[cfg(not(nai_model))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(nai_model)]
pub use loom::sync::{Mutex, MutexGuard};

/// Monotonic time, routed through the facade so the whole crate stays
/// free of direct `std::time::Instant` references (model-checked builds
/// must not branch on real elapsed time).
pub mod time {
    pub use std::time::Instant;
}

/// Lock, recovering from poison: a mutex poisoned by a panicking thread
/// still yields its data. Callers use this on observability paths that must
/// keep working after a worker dies mid-operation.
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
