//! Incremental maintenance of the stationary state `X^(∞)` (Eq. 7).
//!
//! The stationary row of node `i` is rank-1:
//!
//! ```text
//! X^(∞)_i = (d_i+1)^γ / (2m+n) · Σ_j (d_j+1)^(1−γ) x_j
//! ```
//!
//! Both the weighted sum and the normalizer are simple accumulators, so a
//! node arrival with `d` edges or a single edge arrival updates them in
//! `O(f)` (the arriving row plus degree-delta corrections for the touched
//! endpoints) instead of the `O(n·f)` full recomputation of
//! [`nai_core::stationary::StationaryState`].
//!
//! Like the paper's Eq. (7), this uses the **global** normalizer `2m+n`:
//! streaming graphs are treated as one connected population (sessions
//! attach to the observed graph). The per-component refinement for
//! disconnected static graphs lives in `nai-core`; on a connected graph
//! the two agree exactly, which the cross-crate tests verify.

use crate::dynamic::DynamicGraph;
use nai_linalg::DenseMatrix;

/// Accumulator form of `X^(∞)` under node/edge arrivals.
#[derive(Debug, Clone)]
pub struct IncrementalStationary {
    /// `Σ_j (d_j+1)^(1−γ) x_j`, in f64 to keep increments stable.
    weighted_sum: Vec<f64>,
    /// `2m + n`.
    mass: f64,
    gamma: f32,
    feature_dim: usize,
}

impl IncrementalStationary {
    /// Computes the accumulators of the current graph (one `O(n·f)` pass;
    /// subsequent updates are incremental).
    pub fn from_dynamic(g: &DynamicGraph, gamma: f32) -> Self {
        let f = g.feature_dim();
        let mut weighted_sum = vec![0.0f64; f];
        for v in 0..g.num_nodes() as u32 {
            let w = (g.degree(v) as f64 + 1.0).powf(1.0 - gamma as f64);
            for (acc, &x) in weighted_sum.iter_mut().zip(g.feature(v)) {
                *acc += w * x as f64;
            }
        }
        Self {
            weighted_sum,
            mass: g.total_tilde_degree(),
            gamma,
            feature_dim: f,
        }
    }

    /// Convolution coefficient γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Current normalizer `2m + n`.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Applies a node arrival. `features` is the new node's attribute row
    /// and `neighbor_old_degrees` lists, for every *distinct* neighbor it
    /// attached to, that neighbor's degree **before** the arrival together
    /// with the neighbor's feature row.
    ///
    /// Call this *after* [`DynamicGraph::add_node`] using the degrees
    /// captured before the insertion (see [`crate::engine::StreamingEngine::ingest`]).
    ///
    /// # Panics
    /// Panics if a feature slice has the wrong length.
    pub fn on_add_node(&mut self, features: &[f32], neighbor_old_degrees: &[(usize, &[f32])]) {
        assert_eq!(features.len(), self.feature_dim, "arrival feature length");
        let d = neighbor_old_degrees.len();
        let g1 = 1.0 - self.gamma as f64;
        // The new node contributes (d+1)^(1−γ) x_v.
        let w_new = (d as f64 + 1.0).powf(g1);
        for (acc, &x) in self.weighted_sum.iter_mut().zip(features) {
            *acc += w_new * x as f64;
        }
        // Each touched neighbor's weight moves from (d_u+1)^(1−γ) to
        // (d_u+2)^(1−γ).
        for &(old_deg, xu) in neighbor_old_degrees {
            assert_eq!(xu.len(), self.feature_dim, "neighbor feature length");
            let delta = (old_deg as f64 + 2.0).powf(g1) - (old_deg as f64 + 1.0).powf(g1);
            for (acc, &x) in self.weighted_sum.iter_mut().zip(xu) {
                *acc += delta * x as f64;
            }
        }
        // 2m+n: the node adds 1, each new edge adds 2.
        self.mass += 1.0 + 2.0 * d as f64;
    }

    /// Applies an edge arrival between existing nodes whose degrees
    /// before the arrival were `old_deg_u` / `old_deg_v`.
    ///
    /// # Panics
    /// Panics if a feature slice has the wrong length.
    pub fn on_add_edge(&mut self, xu: &[f32], old_deg_u: usize, xv: &[f32], old_deg_v: usize) {
        assert_eq!(xu.len(), self.feature_dim, "endpoint feature length");
        assert_eq!(xv.len(), self.feature_dim, "endpoint feature length");
        let g1 = 1.0 - self.gamma as f64;
        for (x, old) in [(xu, old_deg_u), (xv, old_deg_v)] {
            let delta = (old as f64 + 2.0).powf(g1) - (old as f64 + 1.0).powf(g1);
            for (acc, &val) in self.weighted_sum.iter_mut().zip(x) {
                *acc += delta * val as f64;
            }
        }
        self.mass += 2.0;
    }

    /// Writes `X^(∞)_v` for a node of the given current degree.
    ///
    /// # Panics
    /// Panics if `out.len() != feature_dim`.
    pub fn write_row(&self, degree: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.feature_dim, "output buffer size");
        let scale =
            (degree as f64 + 1.0).powf(self.gamma as f64) / self.mass.max(f64::MIN_POSITIVE);
        for (o, &s) in out.iter_mut().zip(self.weighted_sum.iter()) {
            *o = (scale * s) as f32;
        }
    }

    /// Stationary rows for `nodes` against the current graph state.
    pub fn rows(&self, g: &DynamicGraph, nodes: &[u32]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(nodes.len(), self.feature_dim);
        self.rows_into(g, nodes, &mut out);
        out
    }

    /// [`Self::rows`] into a caller-owned buffer (resized in place), so
    /// the streaming engine reuses one matrix across flushes.
    pub fn rows_into(&self, g: &DynamicGraph, nodes: &[u32], out: &mut DenseMatrix) {
        out.reset_zeroed(nodes.len(), self.feature_dim);
        for (t, &v) in nodes.iter().enumerate() {
            self.write_row(g.degree(v), out.row_mut(t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_graph::generators::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dyn_graph(n: usize, seed: u64) -> DynamicGraph {
        let g = generate(
            &GeneratorConfig {
                num_nodes: n,
                num_classes: 3,
                feature_dim: 6,
                avg_degree: 6.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(seed),
        );
        DynamicGraph::from_graph(&g)
    }

    fn assert_matches_recompute(inc: &IncrementalStationary, g: &DynamicGraph) {
        let fresh = IncrementalStationary::from_dynamic(g, inc.gamma());
        assert!((inc.mass() - fresh.mass()).abs() < 1e-6, "mass drift");
        for v in 0..g.num_nodes() as u32 {
            let mut a = vec![0.0f32; g.feature_dim()];
            let mut b = vec![0.0f32; g.feature_dim()];
            inc.write_row(g.degree(v), &mut a);
            fresh.write_row(g.degree(v), &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-4, "row {v}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn node_arrival_matches_recompute() {
        let mut g = dyn_graph(60, 3);
        let mut inc = IncrementalStationary::from_dynamic(&g, 0.5);
        let feats = vec![0.5f32; 6];
        let neighbors = [0u32, 7, 13];
        let old: Vec<(usize, Vec<f32>)> = neighbors
            .iter()
            .map(|&u| (g.degree(u), g.feature(u).to_vec()))
            .collect();
        g.add_node(&feats, &neighbors);
        let old_refs: Vec<(usize, &[f32])> = old.iter().map(|(d, x)| (*d, x.as_slice())).collect();
        inc.on_add_node(&feats, &old_refs);
        assert_matches_recompute(&inc, &g);
    }

    #[test]
    fn edge_arrival_matches_recompute() {
        let mut g = dyn_graph(60, 4);
        let mut inc = IncrementalStationary::from_dynamic(&g, 0.5);
        let (u, v) = (0u32, 31u32);
        if g.neighbors(u).contains(&v) {
            return; // already connected in this seed; nothing to test
        }
        let (du, dv) = (g.degree(u), g.degree(v));
        let (xu, xv) = (g.feature(u).to_vec(), g.feature(v).to_vec());
        assert!(g.add_edge(u, v));
        inc.on_add_edge(&xu, du, &xv, dv);
        assert_matches_recompute(&inc, &g);
    }

    #[test]
    fn matches_core_stationary_on_connected_graph() {
        // On a connected static graph, the incremental (global-normalizer)
        // form equals nai-core's per-component form.
        let g = generate(
            &GeneratorConfig {
                num_nodes: 80,
                num_classes: 3,
                feature_dim: 6,
                avg_degree: 10.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(9),
        );
        let comps = nai_graph::components::connected_components(&g.adj);
        if comps.count != 1 {
            return; // only the connected case is comparable
        }
        let d = DynamicGraph::from_graph(&g);
        let inc = IncrementalStationary::from_dynamic(&d, 0.5);
        let core = nai_core::stationary::StationaryState::compute(&g.adj, &g.features, 0.5);
        let nodes: Vec<u32> = (0..80).collect();
        let a = inc.rows(&d, &nodes);
        let b = core.rows(&nodes);
        for i in 0..80 {
            for (x, y) in a.row(i).iter().zip(b.row(i)) {
                assert!((x - y).abs() < 1e-4, "node {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn long_arrival_sequence_stays_consistent() {
        let mut g = dyn_graph(40, 5);
        let mut inc = IncrementalStationary::from_dynamic(&g, 0.5);
        let mut rng = StdRng::seed_from_u64(17);
        for step in 0..60 {
            if step % 3 == 0 && g.num_edges() > 0 {
                // Random edge between existing nodes.
                let u = rng.gen_range(0..g.num_nodes()) as u32;
                let v = rng.gen_range(0..g.num_nodes()) as u32;
                if u == v || g.neighbors(u).contains(&v) {
                    continue;
                }
                let (du, dv) = (g.degree(u), g.degree(v));
                let (xu, xv) = (g.feature(u).to_vec(), g.feature(v).to_vec());
                g.add_edge(u, v);
                inc.on_add_edge(&xu, du, &xv, dv);
            } else {
                let deg = rng.gen_range(0..4);
                let mut nbrs: Vec<u32> = (0..deg)
                    .map(|_| rng.gen_range(0..g.num_nodes()) as u32)
                    .collect();
                nbrs.sort_unstable();
                nbrs.dedup();
                let feats: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let old: Vec<(usize, Vec<f32>)> = nbrs
                    .iter()
                    .map(|&u| (g.degree(u), g.feature(u).to_vec()))
                    .collect();
                g.add_node(&feats, &nbrs);
                let old_refs: Vec<(usize, &[f32])> =
                    old.iter().map(|(d, x)| (*d, x.as_slice())).collect();
                inc.on_add_node(&feats, &old_refs);
            }
        }
        assert_matches_recompute(&inc, &g);
    }

    #[test]
    fn gamma_zero_weights_only_source_degrees() {
        // γ = 0 ⇒ left coefficient is 1 for every node: rows are equal
        // regardless of degree.
        let g = dyn_graph(30, 6);
        let inc = IncrementalStationary::from_dynamic(&g, 0.0);
        let mut a = vec![0.0f32; 6];
        let mut b = vec![0.0f32; 6];
        inc.write_row(1, &mut a);
        inc.write_row(50, &mut b);
        assert_eq!(a, b);
    }
}
