//! Property-based invariants for the streaming substrate.

use nai_graph::generators::{generate, GeneratorConfig};
use nai_stream::{DynamicGraph, IncrementalStationary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arrival script: each entry is either a node arrival (feature seed +
/// neighbor picks) or an edge arrival (two node picks).
#[derive(Debug, Clone)]
enum Arrival {
    Node { feat_seed: u64, picks: Vec<u16> },
    Edge { a: u16, b: u16 },
}

fn arrival_strategy() -> impl Strategy<Value = Arrival> {
    prop_oneof![
        (any::<u64>(), proptest::collection::vec(any::<u16>(), 0..5))
            .prop_map(|(feat_seed, picks)| Arrival::Node { feat_seed, picks }),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Arrival::Edge { a, b }),
    ]
}

fn seed_graph(n: usize, seed: u64) -> DynamicGraph {
    let g = generate(
        &GeneratorConfig {
            num_nodes: n,
            num_classes: 3,
            feature_dim: 5,
            avg_degree: 5.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(seed),
    );
    DynamicGraph::from_graph(&g)
}

fn features_from_seed(seed: u64, f: usize) -> Vec<f32> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..f).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Applies the script, keeping the incremental stationary in sync.
fn apply(g: &mut DynamicGraph, inc: &mut IncrementalStationary, script: &[Arrival]) {
    for a in script {
        match a {
            Arrival::Node { feat_seed, picks } => {
                let mut nbrs: Vec<u32> = picks
                    .iter()
                    .map(|&p| (p as usize % g.num_nodes()) as u32)
                    .collect();
                nbrs.sort_unstable();
                nbrs.dedup();
                let feats = features_from_seed(*feat_seed, g.feature_dim());
                let old: Vec<(usize, Vec<f32>)> = nbrs
                    .iter()
                    .map(|&u| (g.degree(u), g.feature(u).to_vec()))
                    .collect();
                g.add_node(&feats, &nbrs);
                let refs: Vec<(usize, &[f32])> =
                    old.iter().map(|(d, x)| (*d, x.as_slice())).collect();
                inc.on_add_node(&feats, &refs);
            }
            Arrival::Edge { a, b } => {
                let u = (*a as usize % g.num_nodes()) as u32;
                let v = (*b as usize % g.num_nodes()) as u32;
                if u == v || g.neighbors(u).contains(&v) {
                    continue;
                }
                let (du, dv) = (g.degree(u), g.degree(v));
                let (xu, xv) = (g.feature(u).to_vec(), g.feature(v).to_vec());
                g.add_edge(u, v);
                inc.on_add_edge(&xu, du, &xv, dv);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The dynamic graph stays structurally sound under any arrival
    /// script: symmetric adjacency, edge count = half the directed
    /// degree sum, and a CSR snapshot that agrees on every degree.
    #[test]
    fn dynamic_graph_structural_invariants(
        script in proptest::collection::vec(arrival_strategy(), 0..40)
    ) {
        let mut g = seed_graph(20, 1);
        let mut inc = IncrementalStationary::from_dynamic(&g, 0.5);
        apply(&mut g, &mut inc, &script);

        let degree_sum: usize = (0..g.num_nodes() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());

        // Symmetry: u ∈ N(v) ⇔ v ∈ N(u); no self-loops; no duplicates.
        for v in 0..g.num_nodes() as u32 {
            let mut nbrs = g.neighbors(v).to_vec();
            let before = nbrs.len();
            nbrs.sort_unstable();
            nbrs.dedup();
            prop_assert_eq!(nbrs.len(), before, "duplicate neighbor at {}", v);
            for &u in g.neighbors(v) {
                prop_assert_ne!(u, v, "self-loop at {}", v);
                prop_assert!(g.neighbors(u).contains(&v), "asymmetry {}-{}", v, u);
            }
        }

        let csr = g.snapshot_csr();
        prop_assert_eq!(csr.nnz(), 2 * g.num_edges());
        for v in 0..g.num_nodes() {
            prop_assert_eq!(csr.row_nnz(v), g.degree(v as u32));
        }
    }

    /// The incremental stationary accumulators equal a from-scratch
    /// recomputation after any arrival script, for multiple γ.
    #[test]
    fn incremental_stationary_matches_recompute(
        script in proptest::collection::vec(arrival_strategy(), 0..30),
        gamma in prop_oneof![Just(0.0f32), Just(0.5f32), Just(1.0f32)],
    ) {
        let mut g = seed_graph(15, 2);
        let mut inc = IncrementalStationary::from_dynamic(&g, gamma);
        apply(&mut g, &mut inc, &script);
        let fresh = IncrementalStationary::from_dynamic(&g, gamma);
        prop_assert!((inc.mass() - fresh.mass()).abs() < 1e-6,
            "mass {} vs {}", inc.mass(), fresh.mass());
        let f = g.feature_dim();
        for v in 0..g.num_nodes() as u32 {
            let mut a = vec![0.0f32; f];
            let mut b = vec![0.0f32; f];
            inc.write_row(g.degree(v), &mut a);
            fresh.write_row(g.degree(v), &mut b);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
            }
        }
    }

    /// Feature rows survive arrivals untouched (no aliasing bugs in the
    /// growable feature store).
    #[test]
    fn features_are_stable_under_growth(
        script in proptest::collection::vec(arrival_strategy(), 0..30)
    ) {
        let mut g = seed_graph(10, 3);
        let originals: Vec<Vec<f32>> =
            (0..10u32).map(|v| g.feature(v).to_vec()).collect();
        let mut inc = IncrementalStationary::from_dynamic(&g, 0.5);
        apply(&mut g, &mut inc, &script);
        for (v, orig) in originals.iter().enumerate() {
            prop_assert_eq!(g.feature(v as u32), orig.as_slice());
        }
    }
}
