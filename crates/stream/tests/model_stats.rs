//! Model tests for `LatencyStats`' lazily sorted quantile cache: compiled
//! only under `--cfg nai_model` (ci.sh `model_check`), where the sync
//! facade swaps `std::sync::Mutex` for the loom model checker's mutex.
//!
//! The invariant under test: however record / merge / quantile calls
//! interleave, `quantiles` never answers from a stale sorted buffer — the
//! answer always reflects exactly the samples present when the scrape
//! acquired the accumulator.
#![cfg(nai_model)]

use loom::sync::{Arc, Mutex};
use nai_stream::stats::LatencyStats;
use std::time::Duration;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Two scrapers race on the interior sorted-cache mutex while the cache is
/// stale: whoever loses the rebuild race must still see a fully rebuilt,
/// current sort — never a half-invalidated one.
#[test]
fn concurrent_scrapes_rebuild_once_and_agree() {
    loom::model(|| {
        let mut stats = LatencyStats::new();
        for v in [30, 10, 20] {
            stats.record(ms(v), 1);
        }
        let stats = Arc::new(stats);
        let s2 = stats.clone();
        let h = loom::thread::spawn(move || {
            let q = s2.quantiles(&[0.0, 1.0]);
            assert_eq!(q, vec![ms(10), ms(30)], "scraper B saw a stale sort");
        });
        let q = stats.quantiles(&[0.0, 1.0]);
        assert_eq!(q, vec![ms(10), ms(30)], "scraper A saw a stale sort");
        h.join().unwrap();
    });
}

/// Writer and scraper share the accumulator the way `nai-serve` shares
/// per-worker stats: behind a mutex. Wherever the scrape lands in the
/// interleaving, its quantiles must agree with the samples it can see under
/// the same lock — a stale cached sort would break `quantile(1.0) == max()`
/// right after the writer's record invalidates it.
#[test]
fn scrape_never_lags_a_record() {
    loom::model(|| {
        let shared = Arc::new(Mutex::new(LatencyStats::new()));
        {
            let mut s = shared.lock().unwrap();
            s.record(ms(5), 1);
            // Warm the sorted cache so the writer's later invalidation is
            // what the scraper's correctness hinges on.
            assert_eq!(s.quantile(1.0), ms(5));
        }
        let writer = {
            let shared = shared.clone();
            loom::thread::spawn(move || {
                shared.lock().unwrap().record(ms(50), 2);
            })
        };
        {
            let s = shared.lock().unwrap();
            let expect = if s.count() == 2 { ms(50) } else { ms(5) };
            assert_eq!(s.quantile(1.0), expect, "quantile from stale sort");
            assert_eq!(s.max(), expect);
        }
        writer.join().unwrap();
        let s = shared.lock().unwrap();
        assert_eq!(s.count(), 2);
        assert_eq!(s.quantile(1.0), ms(50));
    });
}
