//! Gate-based Node-Adaptive Propagation (NAP_g, Eq. 11–13).
//!
//! One lightweight gate `g^(l)` per depth `l ∈ [1, k−1]` decides whether a
//! node's propagation stops at `l`. Each gate scores the concatenation of
//! the node's current propagated feature `X^(l)` and the comparison state
//! `X̂^(l)` (initialised to the stationary feature, Eq. 11) with a single
//! `2f × 2` weight matrix — the paper's lightweight-gate requirement.
//!
//! **Training** (Fig. 3) is end-to-end across depths with frozen
//! classifiers: the discrete exit decision is relaxed via Gumbel-softmax,
//! the per-depth exit probabilities form a stick-breaking chain
//! `α_l = exit_l · Π_{j<l} continue_j`, and the loss is the cross-entropy
//! of the α-weighted mixture of the frozen classifiers' predictions. As
//! documented in DESIGN.md §3, the chain product realises the exclusivity
//! that the paper's penalty term Θ (Eq. 11) enforces, and `X̂` inputs are
//! treated as constants in the backward pass.
//!
//! **Inference** uses deterministic hard decisions; the engine removes a
//! node once selected, which is exactly what Θ with μ = φ = 1000 achieves
//! for nodes that remain in the batch (a selected node's later masks are
//! pinned to "continue", i.e. it is never re-selected —
//! [`GateSet::decide_with_penalty`] demonstrates the equivalence and is
//! exercised in tests).

use nai_linalg::ops::{softmax_rows, softmax_slice};
use nai_linalg::DenseMatrix;
use nai_models::train::gather_depth_feats;
use nai_models::DepthClassifier;
use nai_nn::adam::Adam;
use nai_nn::gumbel::sample_gumbel;
use nai_nn::linear::Linear;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Penalty constants μ and φ of Eq. (11) footnote.
pub const PENALTY_MU: f32 = 1000.0;
/// See [`PENALTY_MU`].
pub const PENALTY_PHI: f32 = 1000.0;

/// Trainable gates for depths `1..=k−1`.
#[derive(Debug)]
pub struct GateSet {
    gates: Vec<Linear>,
    feature_dim: usize,
    k: usize,
}

/// Gate-training outcome.
#[derive(Debug, Clone)]
pub struct GateTrainReport {
    /// Mixture cross-entropy of the final epoch.
    pub final_loss: f32,
    /// Epochs run.
    pub epochs_run: usize,
    /// Mean soft exit depth of the final epoch (diagnostic).
    pub mean_exit_depth: f32,
}

/// Configuration for gate training.
#[derive(Debug, Clone)]
pub struct GateTrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (0 = full batch).
    pub batch_size: usize,
    /// Gumbel-softmax temperature τ.
    pub tau: f32,
    /// Optimizer.
    pub adam: Adam,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GateTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            batch_size: 256,
            tau: 1.0,
            adam: Adam::new(0.01, 0.0),
            seed: 7,
        }
    }
}

impl GateSet {
    /// Builds `k − 1` gates for feature dimension `f`.
    ///
    /// # Panics
    /// Panics if `k < 2` (a single depth needs no gates).
    pub fn new(feature_dim: usize, k: usize, rng: &mut StdRng) -> Self {
        assert!(k >= 2, "gates need at least two candidate depths");
        let gates = (1..k)
            .map(|_| Linear::new(2 * feature_dim, 2, rng))
            .collect();
        Self {
            gates,
            feature_dim,
            k,
        }
    }

    /// Highest depth `k` the gate chain serves.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Gate count (`k − 1`).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// MACs per node for one gate evaluation: the `2f × 2` product.
    pub fn macs_per_node(&self) -> u64 {
        (2 * self.feature_dim * 2) as u64
    }

    /// Feature dimension `f` the gates were built for.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Per-gate `(weights, bias)` snapshot (checkpoint serialization).
    pub fn snapshot(&self) -> Vec<(Vec<f32>, Vec<f32>)> {
        self.gates.iter().map(|g| g.snapshot()).collect()
    }

    /// Restores gate parameters from [`Self::snapshot`] output.
    ///
    /// # Panics
    /// Panics if the snapshot's gate count or shapes disagree.
    pub fn restore(&mut self, snaps: &[(Vec<f32>, Vec<f32>)]) {
        assert_eq!(snaps.len(), self.gates.len(), "gate count mismatch");
        for (g, s) in self.gates.iter_mut().zip(snaps) {
            g.restore(s);
        }
    }

    fn gate_input(x_l: &DenseMatrix, x_hat: &DenseMatrix) -> DenseMatrix {
        // nai-lint: allow(hot-path-panic) -- callers pass row-aligned slices
        // of the same depth-feature table; hconcat can only see equal row counts.
        x_l.hconcat(x_hat).expect("aligned gate inputs")
    }

    /// Deterministic inference decision of gate `depth ∈ [1, k−1]`:
    /// `true` = exit now (mask `[1, 0]`, Eq. 13).
    ///
    /// # Panics
    /// Panics if `depth` has no gate.
    pub fn decide(&self, depth: usize, x_l: &DenseMatrix, x_hat: &DenseMatrix) -> Vec<bool> {
        assert!(
            depth >= 1 && depth < self.k,
            "gate depth {depth} out of range [1, {})",
            self.k
        );
        let input = Self::gate_input(x_l, x_hat);
        let mut logits = self.gates[depth - 1].forward_infer(&input);
        softmax_rows(&mut logits);
        (0..logits.rows())
            .map(|r| logits.get(r, 0) > logits.get(r, 1))
            .collect()
    }

    /// Row-streaming variant of [`Self::decide`] for the active-set
    /// engine: decides each node from borrowed `(X^(l), X̂)` row pairs
    /// without materializing the concatenated gate input or gathering
    /// active rows into matrices. Decisions are **bit-identical** with
    /// [`Self::decide`] on the equivalent matrices (same accumulation
    /// order via `Linear::forward_row_infer`, same per-row softmax).
    ///
    /// # Panics
    /// Panics if `depth` has no gate or a row pair's length differs from
    /// the gate's feature dimension.
    pub fn decide_rows<'a, I>(&self, depth: usize, rows: I, out: &mut Vec<bool>)
    where
        I: Iterator<Item = (&'a [f32], &'a [f32])>,
    {
        assert!(
            depth >= 1 && depth < self.k,
            "gate depth {depth} out of range [1, {})",
            self.k
        );
        let gate = &self.gates[depth - 1];
        let f = self.feature_dim;
        let mut input = vec![0.0f32; 2 * f];
        let mut logits = [0.0f32; 2];
        out.clear();
        for (x_l, x_hat) in rows {
            input[..f].copy_from_slice(x_l);
            input[f..].copy_from_slice(x_hat);
            gate.forward_row_infer(&input, &mut logits);
            softmax_slice(&mut logits);
            out.push(logits[0] > logits[1]);
        }
    }

    /// Faithful Eq. (11)–(13) decision including the penalty term Θ built
    /// from previous selections. `already_selected[i]` is true when node
    /// `i` was selected by an earlier gate; the returned mask is then
    /// guaranteed `false` (continue), matching the engine's node-removal
    /// semantics.
    pub fn decide_with_penalty(
        &self,
        depth: usize,
        x_l: &DenseMatrix,
        x_hat: &DenseMatrix,
        already_selected: &[bool],
    ) -> Vec<bool> {
        let input = Self::gate_input(x_l, x_hat);
        let mut logits = self.gates[depth - 1].forward_infer(&input);
        softmax_rows(&mut logits);
        (0..logits.rows())
            .map(|r| {
                let theta = if already_selected[r] {
                    // θ = Σ μ·σ(φ·(m_prev − 0.5)) ≈ μ for a prior selection.
                    PENALTY_MU * nai_linalg::ops::sigmoid(PENALTY_PHI * 0.5)
                } else {
                    0.0
                };
                (logits.get(r, 0) - theta) > logits.get(r, 1)
            })
            .collect()
    }

    /// End-to-end gate training against frozen classifiers (Fig. 3).
    ///
    /// * `depth_feats` — `X^(0..=k)` on the training graph;
    /// * `stationary` — full stationary matrix aligned with the graph;
    /// * `classifiers` — frozen `f^(1..=k)` (`classifiers[l-1]` serves depth `l`);
    /// * `train_idx` / `labels` — supervision.
    ///
    /// # Panics
    /// Panics if classifier count differs from `k` or shapes disagree.
    pub fn train(
        &mut self,
        depth_feats: &[DenseMatrix],
        stationary: &DenseMatrix,
        classifiers: &[DepthClassifier],
        train_idx: &[u32],
        labels: &[u32],
        cfg: &GateTrainConfig,
    ) -> GateTrainReport {
        assert_eq!(classifiers.len(), self.k, "need one classifier per depth");
        assert!(depth_feats.len() > self.k, "need X^(0..=k)");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = train_idx.len();
        let batch = if cfg.batch_size == 0 || cfg.batch_size >= n {
            n
        } else {
            cfg.batch_size
        };
        let mut order: Vec<usize> = (0..n).collect();
        let mut final_loss = 0.0f32;
        let mut mean_exit_depth = 0.0f32;
        let mut epochs_run = 0usize;

        for _ in 0..cfg.epochs {
            epochs_run += 1;
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut epoch_depth = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                let rows: Vec<usize> = chunk.iter().map(|&p| train_idx[p] as usize).collect();
                let feats = gather_depth_feats(depth_feats, self.k + 1, &rows);
                let yb: Vec<u32> = rows.iter().map(|&r| labels[r]).collect();
                // nai-lint: allow(hot-path-panic) -- rows come from train_idx,
                // which the caller validated against the stationary matrix.
                let x_inf = stationary.gather_rows(&rows).expect("stationary rows");
                let (loss, depth) =
                    self.train_batch(&feats, &x_inf, classifiers, &yb, cfg, &mut rng);
                epoch_loss += loss;
                epoch_depth += depth;
                batches += 1;
            }
            final_loss = epoch_loss / batches.max(1) as f32;
            mean_exit_depth = epoch_depth / batches.max(1) as f32;
        }
        GateTrainReport {
            final_loss,
            epochs_run,
            mean_exit_depth,
        }
    }

    /// One gate-training step on a gathered batch. Returns (loss, mean
    /// soft exit depth).
    fn train_batch(
        &mut self,
        feats: &[DenseMatrix],
        x_inf: &DenseMatrix,
        classifiers: &[DepthClassifier],
        labels: &[u32],
        cfg: &GateTrainConfig,
        rng: &mut StdRng,
    ) -> (f32, f32) {
        let b = labels.len();
        let k = self.k;
        // Frozen per-depth class probabilities p_l (B × c).
        let probs: Vec<DenseMatrix> = (1..=k)
            .map(|l| {
                let mut logits = classifiers[l - 1].forward(&feats[..=l]);
                softmax_rows(&mut logits);
                logits
            })
            .collect();

        // Forward chain with Gumbel-softmax relaxation.
        let mut x_hat = x_inf.clone();
        let mut carry = vec![1.0f32; b]; // Π continue so far
        let mut exits: Vec<Vec<f32>> = Vec::with_capacity(k - 1); // soft exit_l
        let mut conts: Vec<Vec<f32>> = Vec::with_capacity(k - 1);
        let mut carry_before: Vec<Vec<f32>> = Vec::with_capacity(k - 1);
        let mut soft_masks: Vec<DenseMatrix> = Vec::with_capacity(k - 1); // for softmax backward
        for (l, feat) in feats.iter().enumerate().take(k).skip(1) {
            let input = Self::gate_input(feat, &x_hat);
            let logits = self.gates[l - 1].forward(&input, true);
            let mut m = DenseMatrix::zeros(b, 2);
            for r in 0..b {
                let mut row = [
                    (logits.get(r, 0) + sample_gumbel(rng)) / cfg.tau,
                    (logits.get(r, 1) + sample_gumbel(rng)) / cfg.tau,
                ];
                softmax_slice(&mut row);
                m.set(r, 0, row[0]);
                m.set(r, 1, row[1]);
            }
            carry_before.push(carry.clone());
            let e: Vec<f32> = (0..b).map(|r| m.get(r, 0)).collect();
            let c: Vec<f32> = (0..b).map(|r| m.get(r, 1)).collect();
            // X̂^(l+1) = exit·X^(l) + continue·X̂^(l) (Eq. 12, soft form;
            // stop-gradient on the inputs).
            for r in 0..b {
                let xr = feat.row(r);
                let hr = x_hat.row_mut(r);
                for (h, &x) in hr.iter_mut().zip(xr.iter()) {
                    *h = e[r] * x + c[r] * *h;
                }
                carry[r] *= c[r];
            }
            exits.push(e);
            conts.push(c);
            soft_masks.push(m);
        }

        // Mixture prediction P = Σ α_l p_l, α_k = carry.
        let c_dim = probs[0].cols();
        let mut mix = DenseMatrix::zeros(b, c_dim);
        let mut alphas: Vec<Vec<f32>> = Vec::with_capacity(k);
        for l in 1..k {
            let a: Vec<f32> = (0..b)
                .map(|r| exits[l - 1][r] * carry_before[l - 1][r])
                .collect();
            for (r, &ar) in a.iter().enumerate() {
                let src = probs[l - 1].row(r);
                let dst = mix.row_mut(r);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d += ar * s;
                }
            }
            alphas.push(a);
        }
        for (r, &cr) in carry.iter().enumerate() {
            let src = probs[k - 1].row(r);
            let dst = mix.row_mut(r);
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d += cr * s;
            }
        }
        alphas.push(carry.clone());

        // Loss and dα.
        let mut loss = 0.0f32;
        let mut dalpha = vec![vec![0.0f32; b]; k]; // index l-1
        let inv_b = 1.0 / b as f32;
        let mut mean_depth = 0.0f32;
        for r in 0..b {
            let y = labels[r] as usize;
            let p = mix.get(r, y).max(1e-9);
            loss -= p.ln() * inv_b;
            for (l, da) in dalpha.iter_mut().enumerate() {
                da[r] = -probs[l].get(r, y) / p * inv_b;
            }
            for (l, a) in alphas.iter().enumerate() {
                mean_depth += (l + 1) as f32 * a[r] * inv_b;
            }
        }

        // Gradients to soft masks via the stick-breaking chain.
        // T_l = dα_l · α_l; dcontinue_j = Σ_{l>j} T_l / continue_j.
        let mut t = vec![vec![0.0f32; b]; k];
        for l in 0..k {
            for r in 0..b {
                t[l][r] = dalpha[l][r] * alphas[l][r];
            }
        }
        let mut d_exit = vec![vec![0.0f32; b]; k - 1];
        let mut d_cont = vec![vec![0.0f32; b]; k - 1];
        // suffix_after[j][r] = Σ_{l > j} T_l, with T 0-based over depths
        // (T[0] ↔ α_1 … T[k−1] ↔ α_k). Every α_l with l > j carries a
        // factor continue_j, hence dcontinue_j = suffix_after[j] / continue_j.
        let mut suffix_after = vec![vec![0.0f32; b]; k]; // suffix_after[j][r] = Σ_{l > j} t[l][r]
        for j in (0..k - 1).rev() {
            for r in 0..b {
                suffix_after[j][r] = suffix_after[j + 1][r] + t[j + 1][r];
            }
        }
        for j in 1..k {
            // gate at depth j (0-based j-1): exit weight α_j = exit_j · carry_before.
            for r in 0..b {
                d_exit[j - 1][r] = dalpha[j - 1][r] * carry_before[j - 1][r];
                let cont = conts[j - 1][r].max(1e-6);
                d_cont[j - 1][r] = suffix_after[j - 1][r] / cont;
            }
        }

        // Backprop through Gumbel-softmax into each gate.
        for l in 1..k {
            let m = &soft_masks[l - 1];
            let mut dlogits = DenseMatrix::zeros(b, 2);
            for r in 0..b {
                let dm = [d_exit[l - 1][r], d_cont[l - 1][r]];
                let mr = [m.get(r, 0), m.get(r, 1)];
                let dot = dm[0] * mr[0] + dm[1] * mr[1];
                dlogits.set(r, 0, mr[0] * (dm[0] - dot) / cfg.tau);
                dlogits.set(r, 1, mr[1] * (dm[1] - dot) / cfg.tau);
            }
            self.gates[l - 1].zero_grads();
            let _ = self.gates[l - 1].backward(&dlogits);
            self.gates[l - 1].apply_grads(&cfg.adam);
        }
        (loss, mean_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::StationaryState;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::{normalized_adjacency, Convolution};
    use nai_models::propagate_features;
    use nai_models::train::train_depth_classifier;
    use nai_models::ModelKind;
    use nai_nn::trainer::TrainConfig;

    fn fixture() -> (
        Vec<DenseMatrix>,
        DenseMatrix,
        Vec<DepthClassifier>,
        Vec<u32>,
        Vec<u32>,
    ) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 250,
                num_classes: 3,
                feature_dim: 8,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(5),
        );
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let k = 3;
        let feats = propagate_features(&norm, &g.features, k);
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        let xinf = st.full();
        let train: Vec<u32> = (0..180u32).collect();
        let val: Vec<u32> = (180..250u32).collect();
        let mut classifiers = Vec::new();
        for l in 1..=k {
            let mut rng = StdRng::seed_from_u64(10 + l as u64);
            let mut clf = DepthClassifier::new(ModelKind::Sgc, l, 8, 3, &[16], 0.0, &mut rng);
            train_depth_classifier(
                &mut clf,
                &feats,
                &train,
                &g.labels,
                None,
                &val,
                &TrainConfig {
                    epochs: 40,
                    patience: 10,
                    adam: Adam::new(0.02, 0.0),
                    ..TrainConfig::default()
                },
            );
            classifiers.push(clf);
        }
        (feats, xinf, classifiers, train, g.labels.clone())
    }

    #[test]
    fn training_reduces_mixture_loss() {
        let (feats, xinf, classifiers, train, labels) = fixture();
        let mut gates = GateSet::new(8, 3, &mut StdRng::seed_from_u64(20));
        let short = gates.train(
            &feats,
            &xinf,
            &classifiers,
            &train,
            &labels,
            &GateTrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let mut gates2 = GateSet::new(8, 3, &mut StdRng::seed_from_u64(20));
        let long = gates2.train(
            &feats,
            &xinf,
            &classifiers,
            &train,
            &labels,
            &GateTrainConfig {
                epochs: 25,
                ..Default::default()
            },
        );
        assert!(
            long.final_loss < short.final_loss + 0.05,
            "loss should not grow: {} -> {}",
            short.final_loss,
            long.final_loss
        );
        assert!(long.mean_exit_depth >= 1.0 && long.mean_exit_depth <= 3.0);
    }

    #[test]
    fn decide_returns_boolean_per_row() {
        let (feats, xinf, classifiers, train, labels) = fixture();
        let mut gates = GateSet::new(8, 3, &mut StdRng::seed_from_u64(21));
        gates.train(
            &feats,
            &xinf,
            &classifiers,
            &train,
            &labels,
            &GateTrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let rows: Vec<usize> = (0..40).collect();
        let x1 = feats[1].gather_rows(&rows).unwrap();
        let xh = xinf.gather_rows(&rows).unwrap();
        let d = gates.decide(1, &x1, &xh);
        assert_eq!(d.len(), 40);
    }

    #[test]
    fn decide_rows_matches_matrix_decide_bitwise() {
        let (feats, xinf, classifiers, train, labels) = fixture();
        let mut gates = GateSet::new(8, 3, &mut StdRng::seed_from_u64(23));
        gates.train(
            &feats,
            &xinf,
            &classifiers,
            &train,
            &labels,
            &GateTrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let rows: Vec<usize> = (0..40).collect();
        for (depth, level) in feats.iter().enumerate().take(3).skip(1) {
            let x1 = level.gather_rows(&rows).unwrap();
            let xh = xinf.gather_rows(&rows).unwrap();
            let matrix = gates.decide(depth, &x1, &xh);
            let mut streamed = Vec::new();
            gates.decide_rows(
                depth,
                rows.iter().map(|&r| (level.row(r), xinf.row(r))),
                &mut streamed,
            );
            assert_eq!(matrix, streamed, "depth {depth}");
        }
    }

    #[test]
    fn penalty_forces_continue_for_selected_nodes() {
        let (feats, xinf, _classifiers, _train, _labels) = fixture();
        let gates = GateSet::new(8, 3, &mut StdRng::seed_from_u64(22));
        let rows: Vec<usize> = (0..10).collect();
        let x1 = feats[1].gather_rows(&rows).unwrap();
        let xh = xinf.gather_rows(&rows).unwrap();
        let selected = vec![true; 10];
        let d = gates.decide_with_penalty(1, &x1, &xh, &selected);
        assert!(d.iter().all(|&e| !e), "penalty must force continue");
        // Without prior selection, decisions match plain decide().
        let clean = vec![false; 10];
        assert_eq!(
            gates.decide_with_penalty(1, &x1, &xh, &clean),
            gates.decide(1, &x1, &xh)
        );
    }

    #[test]
    fn gate_macs_count() {
        let gates = GateSet::new(16, 4, &mut StdRng::seed_from_u64(23));
        assert_eq!(gates.macs_per_node(), 2 * 16 * 2);
        assert_eq!(gates.num_gates(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two candidate depths")]
    fn k1_rejected() {
        let _ = GateSet::new(4, 1, &mut StdRng::seed_from_u64(24));
    }
}
