//! The stationary feature state `X^(∞)` (Eq. 6–7).
//!
//! As depth grows, `Â^k X` converges (per connected component, with
//! self-loops preventing bipartite oscillation) to
//!
//! ```text
//! X^(∞)_i = (d_i+1)^γ / S_c · Σ_{j ∈ comp(i)} (d_j+1)^(1−γ) x_j,
//! S_c = Σ_{j ∈ comp(i)} (d_j + 1)
//! ```
//!
//! which matches Eq. (7): `Â^(∞)_ij = (d_i+1)^γ (d_j+1)^(1−γ) / (2m+n)`
//! on a connected graph, where `S_c = 2m + n`. The paper presents the
//! global normalizer because its datasets are dominated by one giant
//! component; we keep the per-component sums so the fixed-point property
//! holds exactly on disconnected graphs too.
//!
//! Materializing `Â^(∞)` would cost `O(n²f)` (the Table I accounting);
//! the rank-1 structure lets us precompute component sums once in
//! `O(n·f)` and emit any node's stationary row in `O(f)` — the accounting
//! used by [`crate::macs`] and documented in EXPERIMENTS.md.

use nai_graph::components::{connected_components, Components};
use nai_graph::CsrMatrix;
use nai_linalg::DenseMatrix;

/// Precomputed stationary state for one graph.
#[derive(Debug, Clone)]
pub struct StationaryState {
    components: Components,
    /// Per component: `Σ_j (d_j+1)^(1−γ) x_j`, an `f`-vector.
    weighted_sums: Vec<Vec<f64>>,
    /// Per component: `Σ_j (d_j+1)`.
    masses: Vec<f64>,
    /// Per node: `(d_i+1)^γ`.
    left_coef: Vec<f32>,
    feature_dim: usize,
    /// MACs spent in precomputation (`≈ n·f`).
    precompute_macs: u64,
}

impl StationaryState {
    /// Computes the stationary state of `(adj, features)` for convolution
    /// coefficient `gamma`.
    ///
    /// # Panics
    /// Panics if `features.rows() != adj.n()`.
    pub fn compute(adj: &CsrMatrix, features: &DenseMatrix, gamma: f32) -> Self {
        assert_eq!(features.rows(), adj.n(), "feature rows must match graph");
        let n = adj.n();
        let f = features.cols();
        let components = connected_components(adj);
        let deg = adj.degrees();
        let mut weighted_sums = vec![vec![0.0f64; f]; components.count];
        let mut masses = vec![0.0f64; components.count];
        let mut left_coef = vec![0.0f32; n];
        for i in 0..n {
            let dt = deg[i] + 1.0;
            let comp = components.labels[i] as usize;
            masses[comp] += dt as f64;
            left_coef[i] = dt.powf(gamma);
            let right = dt.powf(1.0 - gamma) as f64;
            let acc = &mut weighted_sums[comp];
            for (a, &x) in acc.iter_mut().zip(features.row(i)) {
                *a += right * x as f64;
            }
        }
        Self {
            components,
            weighted_sums,
            masses,
            left_coef,
            feature_dim: f,
            precompute_macs: (n * f) as u64,
        }
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// MACs spent by [`Self::compute`].
    pub fn precompute_macs(&self) -> u64 {
        self.precompute_macs
    }

    /// Writes `X^(∞)_node` into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != feature_dim` or `node` is out of range.
    pub fn write_row(&self, node: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.feature_dim, "output buffer size");
        let comp = self.components.labels[node as usize] as usize;
        let scale = self.left_coef[node as usize] as f64 / self.masses[comp].max(f64::MIN_POSITIVE);
        for (o, &s) in out.iter_mut().zip(self.weighted_sums[comp].iter()) {
            *o = (scale * s) as f32;
        }
    }

    /// Stationary rows for a set of nodes (`nodes.len() × f`). Costs
    /// `O(|nodes|·f)` — this is the per-batch stationary computation of
    /// Algorithm 1 line 2.
    pub fn rows(&self, nodes: &[u32]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(nodes.len(), self.feature_dim);
        self.rows_into(nodes, &mut out);
        out
    }

    /// [`Self::rows`] into a caller-owned buffer (resized in place), so
    /// hot loops can reuse one matrix across batches.
    pub fn rows_into(&self, nodes: &[u32], out: &mut DenseMatrix) {
        out.reset_zeroed(nodes.len(), self.feature_dim);
        for (t, &node) in nodes.iter().enumerate() {
            self.write_row(node, out.row_mut(t));
        }
    }

    /// Full `n × f` stationary matrix (tests / diagnostics).
    pub fn full(&self) -> DenseMatrix {
        let n = self.components.labels.len();
        let nodes: Vec<u32> = (0..n as u32).collect();
        self.rows(&nodes)
    }

    /// MACs charged per emitted row (`f`, per DESIGN.md §5).
    pub fn macs_per_row(&self) -> u64 {
        self.feature_dim as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_graph::generators::{generate, path_graph, GeneratorConfig};
    use nai_graph::{normalized_adjacency, Convolution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force reference: propagate many times.
    fn brute_force(
        adj: &CsrMatrix,
        x: &DenseMatrix,
        conv: Convolution,
        iters: usize,
    ) -> DenseMatrix {
        let norm = normalized_adjacency(adj, conv);
        let mut h = x.clone();
        for _ in 0..iters {
            h = norm.spmm(&h);
        }
        h
    }

    #[test]
    fn matches_long_propagation_symmetric() {
        let g = path_graph(12, 3);
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        let limit = brute_force(&g.adj, &g.features, Convolution::Symmetric, 600);
        let exact = st.full();
        for (a, b) in exact.as_slice().iter().zip(limit.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn matches_long_propagation_transition_gammas() {
        let g = path_graph(8, 2);
        for (gamma, conv) in [
            (1.0, Convolution::Transition),
            (0.0, Convolution::ReverseTransition),
        ] {
            let st = StationaryState::compute(&g.adj, &g.features, gamma);
            let limit = brute_force(&g.adj, &g.features, conv, 800);
            let exact = st.full();
            for (a, b) in exact.as_slice().iter().zip(limit.as_slice()) {
                assert!((a - b).abs() < 1e-3, "gamma {gamma}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn is_fixed_point_of_propagation() {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 150,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(2),
        );
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        let xinf = st.full();
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let once = norm.spmm(&xinf);
        let scale = xinf.max_abs().max(1.0);
        for (a, b) in once.as_slice().iter().zip(xinf.as_slice()) {
            assert!(
                (a - b).abs() / scale < 1e-4,
                "not a fixed point: {a} vs {b}"
            );
        }
    }

    #[test]
    fn disconnected_components_do_not_mix() {
        // Two disjoint edges with very different features.
        let adj = CsrMatrix::undirected_adjacency(4, &[(0, 1), (2, 3)]).unwrap();
        let mut x = DenseMatrix::zeros(4, 1);
        x.set(0, 0, 10.0);
        x.set(1, 0, 10.0);
        x.set(2, 0, -6.0);
        x.set(3, 0, -6.0);
        let st = StationaryState::compute(&adj, &x, 0.5);
        let full = st.full();
        assert!(full.get(0, 0) > 0.0 && full.get(1, 0) > 0.0);
        assert!(full.get(2, 0) < 0.0 && full.get(3, 0) < 0.0);
    }

    #[test]
    fn rows_subset_matches_full() {
        let g = path_graph(9, 2);
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        let full = st.full();
        let rows = st.rows(&[7, 0, 3]);
        assert_eq!(rows.row(0), full.row(7));
        assert_eq!(rows.row(1), full.row(0));
        assert_eq!(rows.row(2), full.row(3));
    }

    #[test]
    fn degree_dependence_matches_eq7() {
        // For γ = ½ the stationary row scales with sqrt(d+1) within a
        // component: hub of a star vs a leaf.
        let g = nai_graph::generators::star_graph(6, 1);
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        let full = st.full();
        let hub = full.get(0, 0);
        let leaf = full.get(1, 0);
        let want_ratio = (6.0f32).sqrt() / (2.0f32).sqrt(); // d̃_hub=6, d̃_leaf=2
        assert!(
            (hub / leaf - want_ratio).abs() < 1e-4,
            "ratio {} vs {want_ratio}",
            hub / leaf
        );
    }

    #[test]
    fn macs_accounting() {
        let g = path_graph(10, 4);
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        assert_eq!(st.precompute_macs(), 40);
        assert_eq!(st.macs_per_row(), 4);
    }

    #[test]
    fn isolated_node_stationary_is_own_feature() {
        let adj = CsrMatrix::undirected_adjacency(2, &[]).unwrap();
        let x = DenseMatrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        let st = StationaryState::compute(&adj, &x, 0.5);
        let full = st.full();
        assert_eq!(full.row(0), x.row(0));
        assert_eq!(full.row(1), x.row(1));
    }
}
