//! Active-set bookkeeping for Algorithm 1's hot loop.
//!
//! The paper charges Algorithm 1 only for propagation, NAP decisions, and
//! classification — every other per-depth cost is overhead the engine
//! must keep sublinear. This module owns that bookkeeping, shared by the
//! static ([`crate::inference::NaiEngine`]) and streaming
//! (`nai-stream::StreamingEngine`) engines:
//!
//! * [`ActiveSet`] — which batch rows are still propagating. Every active
//!   node carries exactly one row-index indirection: its **original batch
//!   row**. Feature history is stored full-batch-width per depth and
//!   indexed by that row, so an exit round compacts two index vectors
//!   instead of gathering `O(k · |active| · f)` feature copies.
//! * [`FrontierPlan`] — the supporting hop sets plus a stamped
//!   global→local column map for the gather-SpMM. The map replaces the
//!   per-depth `HashMap` the engines used to rebuild (`O(|support|)`
//!   inserts + hashing per depth) with `O(1)` array lookups; entries are
//!   unmapped when the support advances, so the array is reusable across
//!   batches without an `O(n)` reset.
//! * [`EngineScratch`] — one reusable workspace per worker holding both
//!   of the above plus the BFS scratch, feature ping-pong buffers, and
//!   the per-depth history pool. After the first batch warms it up, a
//!   batch iteration performs no `O(n)` work and no per-depth
//!   allocations.
//!
//! The frontier-shrink invariant the engines rely on — `N(sets[l+1]) ⊆
//! sets[l]`, preserved by `BfsScratch::shrink_hop_sets` — is documented
//! in `nai-graph::frontier` and property-tested there.

use nai_graph::frontier::BfsScratch;
use nai_linalg::DenseMatrix;

/// The still-propagating subset of one inference batch.
///
/// Rows are kept in original batch order; [`Self::apply_exits`] compacts
/// in place, so active index `a` always maps to global node
/// `self.nodes()[a]` and original batch row `self.origs()[a]`.
#[derive(Debug, Default)]
pub struct ActiveSet {
    node: Vec<u32>,
    orig: Vec<usize>,
    exited: Vec<usize>,
}

impl ActiveSet {
    /// Starts a new batch: every node is active, in batch order.
    pub fn reset(&mut self, batch: &[u32]) {
        self.node.clear();
        self.node.extend_from_slice(batch);
        self.orig.clear();
        self.orig.extend(0..batch.len());
        self.exited.clear();
    }

    /// Number of still-active nodes.
    pub fn len(&self) -> usize {
        self.node.len()
    }

    /// True when every node has exited.
    pub fn is_empty(&self) -> bool {
        self.node.is_empty()
    }

    /// Global node ids of the active nodes.
    pub fn nodes(&self) -> &[u32] {
        &self.node
    }

    /// Original batch row per active node — the single indirection that
    /// indexes the full-width history, stationary rows, and assigned
    /// depths.
    pub fn origs(&self) -> &[usize] {
        &self.orig
    }

    /// Removes every node with `mask[a] == true` and returns the exiting
    /// nodes' original batch rows, in active order.
    ///
    /// # Panics
    /// Panics if `mask.len()` differs from [`Self::len`].
    pub fn apply_exits(&mut self, mask: &[bool]) -> &[usize] {
        assert_eq!(mask.len(), self.node.len(), "mask must cover the actives");
        self.exited.clear();
        let mut w = 0usize;
        for (r, &exit) in mask.iter().enumerate() {
            if exit {
                self.exited.push(self.orig[r]);
            } else {
                self.node[w] = self.node[r];
                self.orig[w] = self.orig[r];
                w += 1;
            }
        }
        self.node.truncate(w);
        self.orig.truncate(w);
        &self.exited
    }

    /// Original batch rows returned by the most recent
    /// [`Self::apply_exits`].
    pub fn exited(&self) -> &[usize] {
        &self.exited
    }
}

/// Supporting hop sets plus the stamped column map of the current
/// support frontier.
///
/// Invariant between batches (and between depths, outside
/// [`Self::advance`]): `col_map[g] == u32::MAX` for every `g` not in the
/// current support, so no `O(n)` clear is ever needed.
#[derive(Debug, Default)]
pub struct FrontierPlan {
    /// `sets[l]` = supporting nodes for depth `l` (see
    /// `BfsScratch::hop_sets`). Engines take levels out as they advance
    /// and shrink the suffix on exits.
    pub sets: Vec<Vec<u32>>,
    col_map: Vec<u32>,
    support: Vec<u32>,
}

impl FrontierPlan {
    /// Prepares the plan for a graph with `n` nodes (grow-only).
    pub fn reset(&mut self, n: usize) {
        if self.col_map.len() < n {
            self.col_map.resize(n, u32::MAX);
        }
        debug_assert!(self.support.is_empty(), "finish() the previous batch");
    }

    /// Installs `sets[0]` (the widest frontier) as the initial support
    /// and maps it into the column map.
    pub fn init_support(&mut self) {
        let first = std::mem::take(&mut self.sets[0]);
        self.set_support(first);
    }

    /// Advances to a new support frontier: unmaps the old one, maps the
    /// new one, and makes it current.
    pub fn advance(&mut self, new_support: Vec<u32>) {
        for &g in &self.support {
            self.col_map[g as usize] = u32::MAX;
        }
        self.set_support(new_support);
    }

    fn set_support(&mut self, support: Vec<u32>) {
        self.support = support;
        for (t, &g) in self.support.iter().enumerate() {
            self.col_map[g as usize] = t as u32;
        }
    }

    /// The current support frontier (rows of the current feature
    /// buffer).
    pub fn support(&self) -> &[u32] {
        &self.support
    }

    /// Local row of global node `g` in the current support, or
    /// `u32::MAX` when absent.
    pub fn local(&self, g: u32) -> u32 {
        self.col_map[g as usize]
    }

    /// The stamped global→local map, as consumed by
    /// `CsrMatrix::spmm_gather_into`.
    pub fn col_map(&self) -> &[u32] {
        &self.col_map
    }

    /// Ends the batch: unmaps and drops the current support, restoring
    /// the all-`MAX` invariant.
    pub fn finish(&mut self) {
        for &g in &self.support {
            self.col_map[g as usize] = u32::MAX;
        }
        self.support.clear();
    }
}

/// Reusable per-worker workspace for the active-set engine: BFS scratch,
/// frontier plan, active set, stationary rows, per-depth history pool,
/// and the propagation ping-pong buffers.
///
/// One instance serves arbitrarily many batches; `begin_batch` only
/// grows buffers, never shrinks them.
#[derive(Debug, Default)]
pub struct EngineScratch {
    /// BFS workspace (stamped; `O(visited)` per traversal).
    pub bfs: BfsScratch,
    /// Hop sets + column map.
    pub plan: FrontierPlan,
    /// Active-row bookkeeping.
    pub active: ActiveSet,
    /// `history[l]` holds `X^(l)` rows at **original batch positions**;
    /// rows of nodes that exited before depth `l` are stale and never
    /// read.
    pub history: Vec<DenseMatrix>,
    /// Stationary rows `X^(∞)` aligned with the batch.
    pub x_inf: DenseMatrix,
    /// Support features at the previous depth.
    pub h_prev: DenseMatrix,
    /// Support features at the current depth.
    pub h_next: DenseMatrix,
    /// Local row in `h_next` per active node (rebuilt each depth).
    pub active_rows: Vec<usize>,
    /// Exit decisions per active node (rebuilt each depth).
    pub exit_mask: Vec<bool>,
}

impl EngineScratch {
    /// Fresh, empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the workspace for one batch: `n` graph nodes, the batch
    /// itself, `t_max` propagation depths, feature dimension `f`.
    pub fn begin_batch(&mut self, n: usize, batch: &[u32], t_max: usize, f: usize) {
        self.bfs.ensure_capacity(n);
        self.plan.reset(n);
        self.active.reset(batch);
        if self.history.len() < t_max + 1 {
            self.history
                .resize_with(t_max + 1, || DenseMatrix::zeros(0, 0));
        }
        for level in self.history.iter_mut().take(t_max + 1) {
            // No memset: level `l` rows are only ever read for nodes that
            // were still active at depth `l`, and those rows are written
            // before any read (level 0 is written for the whole batch).
            level.reset_for_overwrite(batch.len(), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_set_tracks_orig_rows_across_exit_rounds() {
        let mut a = ActiveSet::default();
        a.reset(&[10, 20, 30, 40, 50]);
        assert_eq!(a.len(), 5);
        assert_eq!(a.nodes(), &[10, 20, 30, 40, 50]);
        assert_eq!(a.origs(), &[0, 1, 2, 3, 4]);

        // Round 1: rows 1 and 3 exit.
        let exited = a.apply_exits(&[false, true, false, true, false]);
        assert_eq!(exited, &[1, 3]);
        assert_eq!(a.nodes(), &[10, 30, 50]);
        assert_eq!(a.origs(), &[0, 2, 4]);

        // Round 2: the middle survivor exits — orig rows stay stable.
        let exited = a.apply_exits(&[false, true, false]);
        assert_eq!(exited, &[2]);
        assert_eq!(a.nodes(), &[10, 50]);
        assert_eq!(a.origs(), &[0, 4]);

        // Round 3: everyone exits.
        let exited = a.apply_exits(&[true, true]);
        assert_eq!(exited, &[0, 4]);
        assert!(a.is_empty());
    }

    #[test]
    fn active_set_reset_clears_previous_batch() {
        let mut a = ActiveSet::default();
        a.reset(&[1, 2, 3]);
        a.apply_exits(&[true, false, true]);
        a.reset(&[7, 8]);
        assert_eq!(a.nodes(), &[7, 8]);
        assert_eq!(a.origs(), &[0, 1]);
        assert!(a.exited().is_empty());
    }

    #[test]
    #[should_panic(expected = "mask must cover")]
    fn apply_exits_rejects_misaligned_mask() {
        let mut a = ActiveSet::default();
        a.reset(&[1, 2, 3]);
        a.apply_exits(&[true]);
    }

    #[test]
    fn frontier_plan_maps_and_unmaps_supports() {
        let mut plan = FrontierPlan::default();
        plan.reset(10);
        plan.sets = vec![vec![0, 1, 2, 3], vec![1, 2], vec![2]];
        plan.init_support();
        assert_eq!(plan.support(), &[0, 1, 2, 3]);
        assert_eq!(plan.local(3), 3);
        assert_eq!(plan.local(7), u32::MAX);

        plan.advance(vec![1, 2]);
        assert_eq!(plan.local(0), u32::MAX); // unmapped
        assert_eq!(plan.local(1), 0);
        assert_eq!(plan.local(2), 1);

        plan.finish();
        for g in 0..10u32 {
            assert_eq!(plan.local(g), u32::MAX, "node {g} still mapped");
        }
    }

    #[test]
    fn engine_scratch_reuses_history_pool() {
        let mut s = EngineScratch::new();
        s.begin_batch(100, &[5, 6, 7], 3, 4);
        assert_eq!(s.history.len(), 4);
        for level in &s.history {
            assert_eq!(level.shape(), (3, 4));
        }
        // A second, smaller batch reuses the pool without shrinking it.
        s.begin_batch(100, &[9], 2, 4);
        assert!(s.history.len() >= 3);
        assert_eq!(s.history[0].shape(), (1, 4));
        assert_eq!(s.active.nodes(), &[9]);
    }
}
