//! Model checkpoints: persist a trained NAI deployment and re-deploy it
//! against a (possibly different) graph.
//!
//! A checkpoint stores the *model* — per-depth classifier weights, optional
//! gate weights, and the architecture needed to rebuild them — but **not**
//! the graph: the deployment graph is supplied at load time and the engine
//! recomputes its normalized adjacency and stationary state. This matches
//! the paper's inductive protocol, where the model trained on `G_train` is
//! deployed on the full graph containing unseen nodes, and lets one
//! checkpoint serve a stream of growing graphs (see `nai-stream`).
//!
//! The format is the same little-endian, magic-and-version style as
//! `nai-graph::io` (magic `NAIC`). Checkpoints are deployment artifacts:
//! optimizer state and dropout are deliberately not stored, so a restored
//! model serves inference but does not resume training.
//!
//! ```no_run
//! use nai_core::checkpoint::ModelCheckpoint;
//! use nai_core::config::InferenceConfig;
//! # fn demo(trained: nai_core::pipeline::TrainedNai,
//! #         graph: nai_graph::Graph,
//! #         test: Vec<u32>) -> Result<(), Box<dyn std::error::Error>> {
//! // Persist after training …
//! let ckpt = ModelCheckpoint::from_engine(&trained.engine, 0.5);
//! ckpt.save(std::path::Path::new("model.naic"))?;
//!
//! // … and deploy later against any graph with the same feature dim.
//! let restored = ModelCheckpoint::load(std::path::Path::new("model.naic"))?;
//! let engine = restored.deploy(&graph);
//! let res = engine.infer(&test, &graph.labels, &InferenceConfig::distance(0.5, 1, restored.k));
//! println!("acc {:.3}", res.report.accuracy);
//! # Ok(())
//! # }
//! ```

use crate::gates::GateSet;
use crate::inference::NaiEngine;
use crate::stationary::StationaryState;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nai_graph::{normalized_adjacency, Convolution, Graph};
use nai_models::classifier::ClassifierSnapshot;
use nai_models::{DepthClassifier, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

const MAGIC: &[u8; 4] = b"NAIC";
const VERSION: u32 = 1;

/// Checkpoint (de)serialization failures.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Malformed or truncated checkpoint bytes.
    Decode(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Decode(msg) => write!(f, "checkpoint decode error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Result alias for checkpoint operations.
pub type Result<T> = std::result::Result<T, CheckpointError>;

/// A serializable trained NAI model.
#[derive(Debug, Clone)]
pub struct ModelCheckpoint {
    /// Base Scalable-GNN kind.
    pub kind: ModelKind,
    /// Highest trained depth `k`.
    pub k: usize,
    /// Input feature dimension `f`.
    pub feature_dim: usize,
    /// Number of classes `c`.
    pub num_classes: usize,
    /// Hidden widths of every classifier MLP.
    pub hidden: Vec<usize>,
    /// Convolution coefficient γ used for the stationary state.
    pub gamma: f32,
    classifier_snaps: Vec<ClassifierSnapshot>,
    gate_snaps: Option<Vec<(Vec<f32>, Vec<f32>)>>,
}

fn kind_to_u8(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::Sgc => 0,
        ModelKind::Sign => 1,
        ModelKind::S2gc => 2,
        ModelKind::Gamlp => 3,
    }
}

fn kind_from_u8(v: u8) -> Result<ModelKind> {
    match v {
        0 => Ok(ModelKind::Sgc),
        1 => Ok(ModelKind::Sign),
        2 => Ok(ModelKind::S2gc),
        3 => Ok(ModelKind::Gamlp),
        other => Err(CheckpointError::Decode(format!(
            "unknown model kind tag {other}"
        ))),
    }
}

fn put_f32_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        buf.put_f32_le(x);
    }
}

fn need(data: &[u8], n: usize, what: &str) -> Result<()> {
    if data.remaining() < n {
        Err(CheckpointError::Decode(format!(
            "truncated while reading {what}: need {n} bytes, have {}",
            data.remaining()
        )))
    } else {
        Ok(())
    }
}

fn get_f32_vec(data: &mut &[u8], what: &str) -> Result<Vec<f32>> {
    need(data, 8, what)?;
    let len = data.get_u64_le() as usize;
    need(data, len * 4, what)?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(data.get_f32_le());
    }
    Ok(v)
}

fn get_pair(data: &mut &[u8], what: &str) -> Result<(Vec<f32>, Vec<f32>)> {
    let w = get_f32_vec(data, what)?;
    let b = get_f32_vec(data, what)?;
    Ok((w, b))
}

impl ModelCheckpoint {
    /// Captures the trained state of an engine.
    ///
    /// Architecture metadata (hidden widths, class count) is recovered
    /// from the deepest classifier's MLP; `gamma` records the stationary
    /// convolution coefficient (the pipeline uses symmetric `γ = 0.5`).
    ///
    /// # Panics
    /// Panics if the engine has no classifiers (impossible via
    /// [`NaiEngine::new`]).
    pub fn from_engine(engine: &NaiEngine, gamma: f32) -> Self {
        let classifiers = engine.classifiers();
        // nai-lint: allow(hot-path-panic) -- NaiEngine::new rejects k = 0, so
        // a constructed engine always has ≥1 classifier (documented # Panics).
        let first = classifiers.first().expect("engine has classifiers");
        let layers = first.mlp.layers();
        let hidden: Vec<usize> = layers[..layers.len() - 1]
            .iter()
            .map(|l| l.out_dim())
            .collect();
        Self {
            kind: first.kind(),
            k: classifiers.len(),
            feature_dim: engine.feature_dim(),
            num_classes: first.mlp.out_dim(),
            hidden,
            gamma,
            classifier_snaps: classifiers.iter().map(|c| c.snapshot()).collect(),
            gate_snaps: engine.gates().map(|g| g.snapshot()),
        }
    }

    /// Serializes the checkpoint.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1024);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u8(kind_to_u8(self.kind));
        buf.put_u64_le(self.k as u64);
        buf.put_u64_le(self.feature_dim as u64);
        buf.put_u64_le(self.num_classes as u64);
        buf.put_f32_le(self.gamma);
        buf.put_u64_le(self.hidden.len() as u64);
        for &h in &self.hidden {
            buf.put_u64_le(h as u64);
        }
        buf.put_u64_le(self.classifier_snaps.len() as u64);
        for snap in &self.classifier_snaps {
            let layers = snap.mlp_layers();
            buf.put_u64_le(layers.len() as u64);
            for (w, b) in layers {
                put_f32_vec(&mut buf, w);
                put_f32_vec(&mut buf, b);
            }
            match snap.gamlp_params() {
                Some((w, b)) => {
                    buf.put_u8(1);
                    put_f32_vec(&mut buf, w);
                    put_f32_vec(&mut buf, b);
                }
                None => buf.put_u8(0),
            }
        }
        match &self.gate_snaps {
            Some(gates) => {
                buf.put_u8(1);
                buf.put_u64_le(gates.len() as u64);
                for (w, b) in gates {
                    put_f32_vec(&mut buf, w);
                    put_f32_vec(&mut buf, b);
                }
            }
            None => buf.put_u8(0),
        }
        buf.freeze()
    }

    /// Deserializes a checkpoint produced by [`Self::encode`].
    ///
    /// # Errors
    /// Returns [`CheckpointError::Decode`] on truncation, bad magic,
    /// unknown version, or inconsistent counts.
    pub fn decode(mut data: &[u8]) -> Result<Self> {
        need(data, 8, "header")?;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CheckpointError::Decode(format!(
                "bad magic {magic:?}, expected NAIC"
            )));
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(CheckpointError::Decode(format!(
                "unsupported version {version}"
            )));
        }
        need(data, 1 + 8 * 3 + 4 + 8, "metadata")?;
        let kind = kind_from_u8(data.get_u8())?;
        let k = data.get_u64_le() as usize;
        let feature_dim = data.get_u64_le() as usize;
        let num_classes = data.get_u64_le() as usize;
        let gamma = data.get_f32_le();
        let hidden_len = data.get_u64_le() as usize;
        if hidden_len > 64 {
            return Err(CheckpointError::Decode(format!(
                "implausible hidden layer count {hidden_len}"
            )));
        }
        need(data, hidden_len * 8, "hidden widths")?;
        let hidden: Vec<usize> = (0..hidden_len)
            .map(|_| data.get_u64_le() as usize)
            .collect();
        // Bound every dimension before anything is allocated from it: a
        // corrupted metadata field must produce a decode error, never an
        // absurd allocation in `build_classifiers`.
        const MAX_DIM: usize = 1 << 22;
        for (what, v) in [
            ("k", k),
            ("feature_dim", feature_dim),
            ("num_classes", num_classes),
        ] {
            if v == 0 || v > MAX_DIM {
                return Err(CheckpointError::Decode(format!("implausible {what} = {v}")));
            }
        }
        if k > 256 {
            return Err(CheckpointError::Decode(format!("implausible k = {k}")));
        }
        for &h in &hidden {
            if h == 0 || h > MAX_DIM {
                return Err(CheckpointError::Decode(format!(
                    "implausible hidden width {h}"
                )));
            }
        }
        need(data, 8, "classifier count")?;
        let num_clf = data.get_u64_le() as usize;
        if num_clf != k {
            return Err(CheckpointError::Decode(format!(
                "classifier count {num_clf} disagrees with k = {k}"
            )));
        }
        let mut classifier_snaps = Vec::with_capacity(num_clf);
        for i in 0..num_clf {
            need(data, 8, "mlp layer count")?;
            let layers = data.get_u64_le() as usize;
            if layers > 64 {
                return Err(CheckpointError::Decode(format!(
                    "implausible layer count {layers} in classifier {i}"
                )));
            }
            let mut mlp = Vec::with_capacity(layers);
            for _ in 0..layers {
                mlp.push(get_pair(&mut data, "mlp layer")?);
            }
            need(data, 1, "gamlp flag")?;
            let gamlp = if data.get_u8() == 1 {
                Some(get_pair(&mut data, "gamlp params")?)
            } else {
                None
            };
            classifier_snaps.push(ClassifierSnapshot::from_parts(mlp, gamlp));
        }
        need(data, 1, "gate flag")?;
        let gate_snaps = if data.get_u8() == 1 {
            need(data, 8, "gate count")?;
            let g = data.get_u64_le() as usize;
            if g + 1 != k {
                return Err(CheckpointError::Decode(format!(
                    "gate count {g} disagrees with k = {k}"
                )));
            }
            let mut gates = Vec::with_capacity(g);
            for _ in 0..g {
                gates.push(get_pair(&mut data, "gate params")?);
            }
            Some(gates)
        } else {
            None
        };
        if data.has_remaining() {
            return Err(CheckpointError::Decode(format!(
                "{} trailing bytes after checkpoint",
                data.remaining()
            )));
        }
        let ckpt = Self {
            kind,
            k,
            feature_dim,
            num_classes,
            hidden,
            gamma,
            classifier_snaps,
            gate_snaps,
        };
        ckpt.validate_shapes()?;
        Ok(ckpt)
    }

    /// Verifies every stored weight vector against the architecture the
    /// metadata implies, so `build_classifiers`/`build_gates` can restore
    /// without panicking on corrupted payloads.
    fn validate_shapes(&self) -> Result<()> {
        let err = |msg: String| Err(CheckpointError::Decode(msg));
        for (i, snap) in self.classifier_snaps.iter().enumerate() {
            let depth = i + 1;
            // MLP input width per base model (SIGN concatenates depths).
            let in_dim = match self.kind {
                ModelKind::Sign => (depth + 1) * self.feature_dim,
                _ => self.feature_dim,
            };
            let mut dims = vec![in_dim];
            dims.extend_from_slice(&self.hidden);
            dims.push(self.num_classes);
            let layers = snap.mlp_layers();
            if layers.len() != dims.len() - 1 {
                return err(format!(
                    "classifier {depth}: {} layers, architecture implies {}",
                    layers.len(),
                    dims.len() - 1
                ));
            }
            for (j, (w, b)) in layers.iter().enumerate() {
                if w.len() != dims[j] * dims[j + 1] || b.len() != dims[j + 1] {
                    return err(format!(
                        "classifier {depth} layer {j}: weight {}×? / bias {} \
                         disagree with {}→{}",
                        w.len(),
                        b.len(),
                        dims[j],
                        dims[j + 1]
                    ));
                }
            }
            match (self.kind, snap.gamlp_params()) {
                (ModelKind::Gamlp, Some((w, b))) => {
                    if w.len() != self.feature_dim || b.len() != 1 {
                        return err(format!(
                            "classifier {depth}: GAMLP score vector {}×{} \
                             disagrees with feature dim {}",
                            w.len(),
                            b.len(),
                            self.feature_dim
                        ));
                    }
                }
                (ModelKind::Gamlp, None) => {
                    return err(format!("classifier {depth}: missing GAMLP parameters"))
                }
                (_, Some(_)) => {
                    return err(format!(
                        "classifier {depth}: unexpected GAMLP parameters for {:?}",
                        self.kind
                    ))
                }
                (_, None) => {}
            }
        }
        if let Some(gates) = &self.gate_snaps {
            for (i, (w, b)) in gates.iter().enumerate() {
                if w.len() != 4 * self.feature_dim || b.len() != 2 {
                    return err(format!(
                        "gate {}: weight {} / bias {} disagree with 2f×2 = {}×2",
                        i + 1,
                        w.len(),
                        b.len(),
                        2 * self.feature_dim
                    ));
                }
            }
        }
        Ok(())
    }

    /// Writes the checkpoint to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors and decode failures.
    pub fn load(path: &Path) -> Result<Self> {
        let data = std::fs::read(path)?;
        Self::decode(&data)
    }

    /// Whether gate weights (NAP_g) are stored.
    pub fn has_gates(&self) -> bool {
        self.gate_snaps.is_some()
    }

    /// Rebuilds the classifier stack with restored weights.
    pub fn build_classifiers(&self) -> Vec<DepthClassifier> {
        let mut rng = StdRng::seed_from_u64(0); // weights are overwritten
        self.classifier_snaps
            .iter()
            .enumerate()
            .map(|(i, snap)| {
                let mut clf = DepthClassifier::new(
                    self.kind,
                    i + 1,
                    self.feature_dim,
                    self.num_classes,
                    &self.hidden,
                    0.0,
                    &mut rng,
                );
                clf.restore(snap);
                clf
            })
            .collect()
    }

    /// Rebuilds the gates with restored weights, when stored.
    pub fn build_gates(&self) -> Option<GateSet> {
        self.gate_snaps.as_ref().map(|snaps| {
            let mut rng = StdRng::seed_from_u64(0);
            let mut gs = GateSet::new(self.feature_dim, self.k, &mut rng);
            gs.restore(snaps);
            gs
        })
    }

    /// Deploys the checkpointed model against `graph`: recomputes the
    /// normalized adjacency and stationary state and assembles an engine.
    ///
    /// # Panics
    /// Panics if the graph's feature dimension disagrees with the
    /// checkpoint.
    pub fn deploy(&self, graph: &Graph) -> NaiEngine {
        assert_eq!(
            graph.feature_dim(),
            self.feature_dim,
            "graph feature dim must match checkpoint"
        );
        let norm = normalized_adjacency(&graph.adj, Convolution::Symmetric);
        let st = StationaryState::compute(&graph.adj, &graph.features, self.gamma);
        NaiEngine::new(
            graph,
            norm,
            st,
            self.build_classifiers(),
            self.build_gates(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InferenceConfig, PipelineConfig};
    use crate::pipeline::NaiPipeline;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::InductiveSplit;

    fn trained() -> (Graph, InductiveSplit, crate::pipeline::TrainedNai) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 300,
                num_classes: 3,
                feature_dim: 8,
                avg_degree: 8.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(5),
        );
        let split = InductiveSplit::random(300, 0.5, 0.2, &mut StdRng::seed_from_u64(6));
        let cfg = PipelineConfig {
            k: 3,
            hidden: vec![16],
            epochs: 25,
            patience: 8,
            gate_epochs: 8,
            distill: crate::config::DistillConfig {
                epochs: 8,
                ensemble_r: 2,
                ..Default::default()
            },
            ..PipelineConfig::default()
        };
        let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, true);
        (g, split, t)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let (g, split, t) = trained();
        let ckpt = ModelCheckpoint::from_engine(&t.engine, 0.5);
        let restored = ModelCheckpoint::decode(&ckpt.encode()).unwrap();
        let engine2 = restored.deploy(&g);
        for cfg in [
            InferenceConfig::fixed(3),
            InferenceConfig::distance(0.5, 1, 3),
            InferenceConfig::gate(1, 3),
        ] {
            let a = t.engine.infer(&split.test, &g.labels, &cfg);
            let b = engine2.infer(&split.test, &g.labels, &cfg);
            assert_eq!(a.predictions, b.predictions, "{:?}", cfg.nap);
            assert_eq!(a.depths, b.depths, "{:?}", cfg.nap);
        }
    }

    #[test]
    fn metadata_survives_roundtrip() {
        let (_, _, t) = trained();
        let ckpt = ModelCheckpoint::from_engine(&t.engine, 0.5);
        let restored = ModelCheckpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(restored.kind, ModelKind::Sgc);
        assert_eq!(restored.k, 3);
        assert_eq!(restored.feature_dim, 8);
        assert_eq!(restored.num_classes, 3);
        assert_eq!(restored.hidden, vec![16]);
        assert!(restored.has_gates());
        assert!((restored.gamma - 0.5).abs() < 1e-9);
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let (g, split, t) = trained();
        let ckpt = ModelCheckpoint::from_engine(&t.engine, 0.5);
        let dir = std::env::temp_dir().join("nai_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.naic");
        ckpt.save(&path).unwrap();
        let restored = ModelCheckpoint::load(&path).unwrap();
        let engine2 = restored.deploy(&g);
        let cfg = InferenceConfig::fixed(2);
        let a = t.engine.infer(&split.test, &g.labels, &cfg);
        let b = engine2.infer(&split.test, &g.labels, &cfg);
        assert_eq!(a.predictions, b.predictions);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_bytes_are_rejected_not_panicking() {
        let (_, _, t) = trained();
        let bytes = ModelCheckpoint::from_engine(&t.engine, 0.5).encode();
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            ModelCheckpoint::decode(&bad),
            Err(CheckpointError::Decode(_))
        ));
        // Truncation at every prefix must error, never panic.
        for cut in [0, 4, 8, 9, 33, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ModelCheckpoint::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Trailing garbage is rejected.
        let mut long = bytes.to_vec();
        long.extend_from_slice(&[0u8; 7]);
        assert!(ModelCheckpoint::decode(&long).is_err());
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let (_, _, t) = trained();
        let mut bytes = ModelCheckpoint::from_engine(&t.engine, 0.5)
            .encode()
            .to_vec();
        bytes[4] = 99;
        let err = ModelCheckpoint::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn deploy_to_larger_graph_works() {
        // The inductive promise: deploy the same checkpoint on a graph
        // with more (unseen) nodes but the same feature dimension.
        let (_, _, t) = trained();
        let bigger = generate(
            &GeneratorConfig {
                num_nodes: 500,
                num_classes: 3,
                feature_dim: 8,
                avg_degree: 8.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(99),
        );
        let ckpt = ModelCheckpoint::from_engine(&t.engine, 0.5);
        let engine = ckpt.deploy(&bigger);
        let test: Vec<u32> = (400..500).collect();
        let res = engine.infer(&test, &bigger.labels, &InferenceConfig::distance(0.5, 1, 3));
        assert_eq!(res.predictions.len(), 100);
    }

    #[test]
    #[should_panic(expected = "feature dim")]
    fn deploy_with_wrong_feature_dim_panics() {
        let (_, _, t) = trained();
        let wrong = generate(
            &GeneratorConfig {
                num_nodes: 100,
                num_classes: 3,
                feature_dim: 12,
                avg_degree: 6.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(1),
        );
        let _ = ModelCheckpoint::from_engine(&t.engine, 0.5).deploy(&wrong);
    }
}
