//! Classification-quality metrics beyond plain accuracy.
//!
//! The paper reports ACC only, but a deployable inference framework needs
//! per-class diagnostics: adaptive early exits could in principle trade
//! accuracy unevenly across classes (e.g. hurt rare classes whose nodes
//! sit in sparse regions and need deeper propagation). This module
//! provides a confusion matrix with macro/micro precision–recall–F1 and
//! an expected-calibration-error estimate over predicted probabilities,
//! used by the `class_balance` failure-injection tests and the CLI's
//! `eval` subcommand.

use nai_linalg::DenseMatrix;

/// A `c × c` confusion matrix; rows are true classes, columns predicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<u64>,
    num_classes: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from aligned prediction/label slices.
    ///
    /// # Panics
    /// Panics if lengths differ or any class id is `≥ num_classes`.
    pub fn from_predictions(predictions: &[usize], labels: &[u32], num_classes: usize) -> Self {
        assert_eq!(
            predictions.len(),
            labels.len(),
            "predictions and labels must align"
        );
        let mut counts = vec![0u64; num_classes * num_classes];
        for (&p, &y) in predictions.iter().zip(labels) {
            let y = y as usize;
            assert!(p < num_classes, "prediction {p} out of range");
            assert!(y < num_classes, "label {y} out of range");
            counts[y * num_classes + p] += 1;
        }
        Self {
            counts,
            num_classes,
        }
    }

    /// Number of classes `c`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Count of true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> u64 {
        self.counts[t * self.num_classes + p]
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (trace / total); 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.num_classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// True positives, false positives, and false negatives of class `c`.
    pub fn class_tallies(&self, c: usize) -> (u64, u64, u64) {
        let tp = self.count(c, c);
        let fp: u64 = (0..self.num_classes)
            .filter(|&t| t != c)
            .map(|t| self.count(t, c))
            .sum();
        let fnn: u64 = (0..self.num_classes)
            .filter(|&p| p != c)
            .map(|p| self.count(c, p))
            .sum();
        (tp, fp, fnn)
    }

    /// Precision of class `c`; 0 when the class was never predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let (tp, fp, _) = self.class_tallies(c);
        if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        }
    }

    /// Recall of class `c`; 0 when the class has no true samples.
    pub fn recall(&self, c: usize) -> f64 {
        let (tp, _, fnn) = self.class_tallies(c);
        if tp + fnn == 0 {
            0.0
        } else {
            tp as f64 / (tp + fnn) as f64
        }
    }

    /// F1 of class `c` (harmonic mean of precision and recall).
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class F1 scores.
    pub fn macro_f1(&self) -> f64 {
        if self.num_classes == 0 {
            return 0.0;
        }
        (0..self.num_classes).map(|c| self.f1(c)).sum::<f64>() / self.num_classes as f64
    }

    /// Micro-averaged F1. With single-label multi-class data every false
    /// positive is another class's false negative, so micro-F1 equals
    /// accuracy — kept as a separate method (and tested for that identity)
    /// because callers read them as different quantities.
    pub fn micro_f1(&self) -> f64 {
        let (mut tp, mut fp, mut fnn) = (0u64, 0u64, 0u64);
        for c in 0..self.num_classes {
            let (t, f, n) = self.class_tallies(c);
            tp += t;
            fp += f;
            fnn += n;
        }
        if 2 * tp + fp + fnn == 0 {
            0.0
        } else {
            2.0 * tp as f64 / (2 * tp + fp + fnn) as f64
        }
    }

    /// Per-class support (number of true samples).
    pub fn support(&self, c: usize) -> u64 {
        (0..self.num_classes).map(|p| self.count(c, p)).sum()
    }
}

/// Expected Calibration Error over `bins` equal-width confidence bins.
///
/// `probs` holds one softmax row per sample; confidence is the max
/// probability, and ECE is the support-weighted mean |accuracy −
/// confidence| over the bins. Empty input yields 0.
///
/// # Panics
/// Panics if `bins == 0` or `probs.rows() != labels.len()`.
pub fn expected_calibration_error(probs: &DenseMatrix, labels: &[u32], bins: usize) -> f64 {
    assert!(bins > 0, "need at least one bin");
    assert_eq!(probs.rows(), labels.len(), "probs rows must match labels");
    let n = probs.rows();
    if n == 0 {
        return 0.0;
    }
    let mut bin_conf = vec![0.0f64; bins];
    let mut bin_correct = vec![0u64; bins];
    let mut bin_count = vec![0u64; bins];
    for (i, &label) in labels.iter().enumerate() {
        let row = probs.row(i);
        let (mut arg, mut best) = (0usize, f32::NEG_INFINITY);
        for (j, &p) in row.iter().enumerate() {
            if p > best {
                best = p;
                arg = j;
            }
        }
        let b = (((best as f64) * bins as f64) as usize).min(bins - 1);
        bin_conf[b] += best as f64;
        bin_count[b] += 1;
        if arg == label as usize {
            bin_correct[b] += 1;
        }
    }
    let mut ece = 0.0;
    for b in 0..bins {
        if bin_count[b] == 0 {
            continue;
        }
        let acc = bin_correct[b] as f64 / bin_count[b] as f64;
        let conf = bin_conf[b] / bin_count[b] as f64;
        ece += bin_count[b] as f64 / n as f64 * (acc - conf).abs();
    }
    ece
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_class() -> ConfusionMatrix {
        // true:      0 0 0 0 1 1 1 2 2 2
        // predicted: 0 0 0 1 1 1 2 2 2 0
        let labels = [0, 0, 0, 0, 1, 1, 1, 2, 2, 2];
        let preds = [0, 0, 0, 1, 1, 1, 2, 2, 2, 0];
        ConfusionMatrix::from_predictions(&preds, &labels, 3)
    }

    #[test]
    fn counts_and_accuracy() {
        let m = three_class();
        assert_eq!(m.total(), 10);
        assert_eq!(m.count(0, 0), 3);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(2, 0), 1);
        assert!((m.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn per_class_precision_recall_f1() {
        let m = three_class();
        // Class 0: tp=3, fp=1 (true 2 → 0), fn=1 (true 0 → 1).
        assert!((m.precision(0) - 0.75).abs() < 1e-12);
        assert!((m.recall(0) - 0.75).abs() < 1e-12);
        assert!((m.f1(0) - 0.75).abs() < 1e-12);
        // Class 1: tp=2, fp=1, fn=1.
        assert!((m.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn micro_f1_equals_accuracy_for_single_label() {
        let m = three_class();
        assert!((m.micro_f1() - m.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_missing_class() {
        // Class 2 never predicted correctly.
        let labels = [0, 0, 1, 1, 2, 2];
        let preds = [0, 0, 1, 1, 0, 1];
        let m = ConfusionMatrix::from_predictions(&preds, &labels, 3);
        assert_eq!(m.f1(2), 0.0);
        assert!(m.macro_f1() < m.micro_f1());
    }

    #[test]
    fn support_sums_to_total() {
        let m = three_class();
        let s: u64 = (0..3).map(|c| m.support(c)).sum();
        assert_eq!(s, m.total());
        assert_eq!(m.support(0), 4);
    }

    #[test]
    fn perfect_predictions_are_perfect_everywhere() {
        let labels = [0u32, 1, 2, 1, 0];
        let preds = [0usize, 1, 2, 1, 0];
        let m = ConfusionMatrix::from_predictions(&preds, &labels, 3);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.micro_f1(), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let _ = ConfusionMatrix::from_predictions(&[0], &[7], 3);
    }

    #[test]
    fn ece_zero_for_perfectly_calibrated_confident_model() {
        // All predictions correct with confidence 1.0.
        let probs = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let labels = [0u32, 1, 0];
        assert!(expected_calibration_error(&probs, &labels, 10) < 1e-9);
    }

    #[test]
    fn ece_detects_overconfidence() {
        // Confident (0.9) but always wrong → ECE ≈ 0.9.
        let probs = DenseMatrix::from_vec(4, 2, vec![0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1]);
        let labels = [1u32, 1, 1, 1];
        let ece = expected_calibration_error(&probs, &labels, 10);
        assert!((ece - 0.9).abs() < 1e-6, "ece {ece}");
    }

    #[test]
    fn ece_empty_input_is_zero() {
        let probs = DenseMatrix::zeros(0, 3);
        assert_eq!(expected_calibration_error(&probs, &[], 5), 0.0);
    }
}
