//! Algorithm 1 — batched node-adaptive inductive inference.
//!
//! For each test batch the engine:
//!
//! 1. computes the batch's stationary rows (line 2);
//! 2. BFS-collects supporting hop sets `S_l = N_{T_max−l}(batch)`
//!    (line 3);
//! 3. propagates online: `H_l[i] = Σ_j Â_ij H_{l−1}[j]` for `i ∈ S_l`
//!    (valid because `N(S_l) ⊆ S_{l−1}`, a property tested in
//!    `nai-graph`);
//! 4. from depth `T_min` onward applies the selected NAP module to the
//!    still-active batch nodes; exiting nodes are classified by `f^(l)`
//!    immediately (lines 6–15);
//! 5. when nodes exit, **shrinks the remaining hop sets to the
//!    survivors' neighborhoods** (an in-place filter, membership-equal
//!    to recomputation — see `nai-graph::frontier`), shrinking every
//!    later SpMM — this is where the nonlinear speedup of Table V comes
//!    from, because supporting sets grow exponentially with depth;
//! 6. classifies whatever remains at `T_max` (line 17).
//!
//! The loop runs on the [`crate::active`] engine: one
//! [`EngineScratch`] per worker amortizes every buffer across batches,
//! exit rounds compact index vectors instead of copying feature
//! history, and support lookups go through the stamped column map
//! instead of per-depth hash maps. Wall-clock time is split into
//! feature processing (sampling + propagation + stationary + NAP) and
//! total, matching the paper's "FP Time" / "Time" columns; MACs are
//! tallied by [`crate::macs::MacsBreakdown`].

use crate::active::EngineScratch;
use crate::config::{InferenceConfig, NapMode};
use crate::gates::GateSet;
use crate::macs::MacsBreakdown;
use crate::metrics::InferenceReport;
use crate::napd;
use crate::stationary::StationaryState;
use crate::upper_bound;
use nai_graph::{CsrMatrix, Graph};
use nai_linalg::ops::{argmax_rows, l2_distance};
use nai_linalg::DenseMatrix;
use nai_models::DepthClassifier;
use std::time::{Duration, Instant};

/// Per-node outcome of an inference run, aligned with the input order.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Predicted class per test node.
    pub predictions: Vec<usize>,
    /// Personalized propagation depth per test node.
    pub depths: Vec<usize>,
    /// Aggregate metrics.
    pub report: InferenceReport,
}

/// A trained NAI deployment: full-graph adjacency, per-depth classifiers,
/// optional gates, and the stationary state.
pub struct NaiEngine {
    /// Raw adjacency of the full graph (BFS frontier discovery).
    adj: CsrMatrix,
    /// Normalized adjacency `Â` of the full graph (online propagation).
    norm_adj: CsrMatrix,
    /// Raw features `X^(0)` of the full graph.
    features: DenseMatrix,
    /// Stationary state of the full graph.
    stationary: StationaryState,
    /// `classifiers[l−1]` serves exit depth `l`.
    classifiers: Vec<DepthClassifier>,
    /// Gates for NAP_g (depths `1..k−1`).
    gates: Option<GateSet>,
    /// `2m + n` of the deployment graph (Eq. 7/10 normalizer).
    total_tilde_degree: f64,
    /// Cached λ₂ estimate of `Â` (NAP_u; computed on first use).
    lambda2: std::sync::OnceLock<f32>,
}

impl NaiEngine {
    /// Assembles an engine.
    ///
    /// # Panics
    /// Panics if no classifiers are supplied or shapes disagree.
    pub fn new(
        graph: &Graph,
        norm_adj: CsrMatrix,
        stationary: StationaryState,
        classifiers: Vec<DepthClassifier>,
        gates: Option<GateSet>,
    ) -> Self {
        assert!(!classifiers.is_empty(), "need at least one classifier");
        assert_eq!(norm_adj.n(), graph.num_nodes(), "normalized adjacency size");
        for (i, c) in classifiers.iter().enumerate() {
            assert_eq!(c.depth(), i + 1, "classifiers must be ordered by depth");
        }
        let total_tilde_degree = (graph.adj.nnz() + graph.adj.n()) as f64;
        Self {
            adj: graph.adj.clone(),
            norm_adj,
            features: graph.features.clone(),
            stationary,
            classifiers,
            gates,
            total_tilde_degree,
            lambda2: std::sync::OnceLock::new(),
        }
    }

    /// λ₂ estimate of the normalized adjacency, cached after the first
    /// call (NAP_u treats it as a deployment constant, like the stationary
    /// component sums).
    pub fn lambda2(&self) -> f32 {
        *self
            .lambda2
            .get_or_init(|| self.norm_adj.lambda2_estimate(100, 0x1a2b).min(0.999))
    }

    /// `2m + n` of the deployment graph.
    pub fn total_tilde_degree(&self) -> f64 {
        self.total_tilde_degree
    }

    /// Highest trained depth `k`.
    pub fn k(&self) -> usize {
        self.classifiers.len()
    }

    /// Classifier serving depth `l` (1-based).
    pub fn classifier(&self, l: usize) -> &DepthClassifier {
        &self.classifiers[l - 1]
    }

    /// All per-depth classifiers, ordered by depth.
    pub fn classifiers(&self) -> &[DepthClassifier] {
        &self.classifiers
    }

    /// Trained gates, when NAP_g was trained.
    pub fn gates(&self) -> Option<&GateSet> {
        self.gates.as_ref()
    }

    /// Feature dimensionality `f` of the deployment graph.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Runs Algorithm 1 over `test_nodes`, comparing predictions against
    /// `labels` (full-graph label array) for the report's accuracy.
    ///
    /// # Panics
    /// Panics if the config fails validation, a gate mode is requested
    /// without gates, or node ids exceed the graph.
    pub fn infer(
        &self,
        test_nodes: &[u32],
        labels: &[u32],
        cfg: &InferenceConfig,
    ) -> InferenceResult {
        self.infer_with_heads(
            test_nodes,
            labels,
            cfg,
            &|l, feats| self.classifiers[l - 1].forward(feats),
            &|l| self.classifiers[l - 1].macs_per_node(),
        )
    }

    /// Algorithm 1 with **pluggable classifier heads**: `head(l, feats)`
    /// produces the exit-depth-`l` logits from the per-depth feature
    /// history, and `head_macs(l)` its per-node MACs. The engine keeps
    /// propagation, NAP decisions, and frontier bookkeeping; callers swap
    /// in alternative heads — the INT8-quantized adaptive deployment
    /// (`nai-baselines::quantization::QuantizedNai`) is built on this seam.
    ///
    /// # Panics
    /// Same contract as [`Self::infer`].
    pub fn infer_with_heads(
        &self,
        test_nodes: &[u32],
        labels: &[u32],
        cfg: &InferenceConfig,
        head: &dyn Fn(usize, &[DenseMatrix]) -> DenseMatrix,
        head_macs: &dyn Fn(usize) -> u64,
    ) -> InferenceResult {
        // nai-lint: allow(hot-path-panic) -- deliberate precondition assert
        // (documented # Panics): a bad config must abort before inference.
        cfg.validate(self.k()).expect("invalid inference config");
        if matches!(cfg.nap, NapMode::Gate) {
            assert!(
                self.gates.is_some(),
                "gate NAP requested but the engine has no trained gates"
            );
        }
        let total_start = Instant::now();
        let mut feature_time = Duration::ZERO;
        let mut macs = MacsBreakdown::default();
        // Stationary precompute charged once per run (rank-1 structure;
        // see DESIGN.md §5 / EXPERIMENTS.md accounting).
        macs.stationary += self.stationary.precompute_macs();

        let mut predictions = vec![usize::MAX; test_nodes.len()];
        let mut depths = vec![0usize; test_nodes.len()];
        let mut histogram = vec![0usize; cfg.t_max];
        let mut scratch = EngineScratch::new();
        let mut batches = 0usize;

        for batch_start in (0..test_nodes.len()).step_by(cfg.batch_size) {
            let batch =
                &test_nodes[batch_start..(batch_start + cfg.batch_size).min(test_nodes.len())];
            batches += 1;
            self.infer_batch(
                batch,
                batch_start,
                cfg,
                head,
                head_macs,
                &mut scratch,
                &mut macs,
                &mut feature_time,
                &mut predictions,
                &mut depths,
                &mut histogram,
                true,
            );
        }

        let total_time = total_start.elapsed();
        let eval: Vec<usize> = (0..test_nodes.len()).collect();
        let label_view: Vec<u32> = test_nodes.iter().map(|&v| labels[v as usize]).collect();
        let accuracy = nai_linalg::ops::accuracy(&predictions, &label_view, &eval);
        InferenceResult {
            report: InferenceReport {
                num_nodes: test_nodes.len(),
                accuracy,
                macs,
                total_time,
                feature_time,
                depth_histogram: histogram,
                batches,
            },
            predictions,
            depths,
        }
    }

    /// Multi-threaded Algorithm 1: test batches are independent, so they
    /// are partitioned (at batch granularity) over `num_threads` OS
    /// threads, each with its own BFS scratch. Predictions, depths, MACs,
    /// and the exit histogram are bit-identical with [`Self::infer`];
    /// only wall-clock changes. `feature_time` is summed across threads
    /// (busy time, not elapsed), matching the MACs-style accounting.
    ///
    /// # Panics
    /// Same contract as [`Self::infer`], plus `num_threads ≥ 1`.
    pub fn infer_parallel(
        &self,
        test_nodes: &[u32],
        labels: &[u32],
        cfg: &InferenceConfig,
        num_threads: usize,
    ) -> InferenceResult {
        assert!(num_threads >= 1, "need at least one thread");
        // nai-lint: allow(hot-path-panic) -- deliberate precondition assert
        // (documented # Panics): a bad config must abort before inference.
        cfg.validate(self.k()).expect("invalid inference config");
        if matches!(cfg.nap, NapMode::Gate) {
            assert!(
                self.gates.is_some(),
                "gate NAP requested but the engine has no trained gates"
            );
        }
        // Initialize the λ₂ cache before workers share it.
        if matches!(cfg.nap, NapMode::UpperBound { .. }) {
            let _ = self.lambda2();
        }
        let total_start = Instant::now();
        let batch_size = cfg.batch_size;
        let n_batches = test_nodes.len().div_ceil(batch_size).max(1);
        let per_thread = n_batches.div_ceil(num_threads);

        let mut predictions = vec![usize::MAX; test_nodes.len()];
        let mut depths = vec![0usize; test_nodes.len()];

        struct WorkerOut {
            macs: MacsBreakdown,
            feature_time: Duration,
            histogram: Vec<usize>,
            batches: usize,
        }

        let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut pred_rest: &mut [usize] = &mut predictions;
            let mut depth_rest: &mut [usize] = &mut depths;
            let mut consumed = 0usize;
            for t in 0..num_threads {
                let node_start = (t * per_thread * batch_size).min(test_nodes.len());
                let node_end = ((t + 1) * per_thread * batch_size).min(test_nodes.len());
                if node_start >= node_end {
                    break;
                }
                debug_assert_eq!(node_start, consumed);
                let count = node_end - node_start;
                let (pred_slice, pr) = pred_rest.split_at_mut(count);
                let (depth_slice, dr) = depth_rest.split_at_mut(count);
                pred_rest = pr;
                depth_rest = dr;
                consumed += count;
                let nodes = &test_nodes[node_start..node_end];
                handles.push(scope.spawn(move || {
                    let mut out = WorkerOut {
                        macs: MacsBreakdown::default(),
                        feature_time: Duration::ZERO,
                        histogram: vec![0usize; cfg.t_max],
                        batches: 0,
                    };
                    let mut scratch = EngineScratch::new();
                    for start in (0..nodes.len()).step_by(batch_size) {
                        let batch = &nodes[start..(start + batch_size).min(nodes.len())];
                        out.batches += 1;
                        self.infer_batch(
                            batch,
                            start,
                            cfg,
                            &|l, feats| self.classifiers[l - 1].forward(feats),
                            &|l| self.classifiers[l - 1].macs_per_node(),
                            &mut scratch,
                            &mut out.macs,
                            &mut out.feature_time,
                            pred_slice,
                            depth_slice,
                            &mut out.histogram,
                            true,
                        );
                    }
                    out
                }));
            }
            handles
                .into_iter()
                // nai-lint: allow(hot-path-panic) -- join propagates a worker
                // panic to the caller; swallowing it would return truncated rows.
                .map(|h| h.join().expect("worker"))
                .collect()
        });

        let mut macs = MacsBreakdown::default();
        macs.stationary += self.stationary.precompute_macs();
        let mut feature_time = Duration::ZERO;
        let mut histogram = vec![0usize; cfg.t_max];
        let mut batches = 0usize;
        for o in outs {
            macs.add(&o.macs);
            feature_time += o.feature_time;
            for (h, v) in histogram.iter_mut().zip(&o.histogram) {
                *h += v;
            }
            batches += o.batches;
        }

        let total_time = total_start.elapsed();
        let eval: Vec<usize> = (0..test_nodes.len()).collect();
        let label_view: Vec<u32> = test_nodes.iter().map(|&v| labels[v as usize]).collect();
        let accuracy = nai_linalg::ops::accuracy(&predictions, &label_view, &eval);
        InferenceResult {
            report: InferenceReport {
                num_nodes: test_nodes.len(),
                accuracy,
                macs,
                total_time,
                feature_time,
                depth_histogram: histogram,
                batches,
            },
            predictions,
            depths,
        }
    }

    /// Online frontier propagation *without* adaptive exits: returns the
    /// per-depth features `X^(0..=depth)` of `batch` (rows aligned with
    /// `batch`), the MACs spent, and the feature-processing wall time.
    ///
    /// This is the vanilla inductive-inference path (Fig. 1 (d)) that the
    /// fixed-depth baselines — vanilla Scalable GNNs and the Quantization
    /// baseline — share with NAI. It runs on the same active-set engine
    /// as [`Self::infer`] (fixed depth, capturing head). This
    /// convenience wrapper builds a fresh [`EngineScratch`] per call;
    /// callers issuing many batches should hold one scratch and use
    /// [`Self::propagate_only_with`] instead.
    ///
    /// # Panics
    /// Panics if `depth` is zero or any node id is out of range.
    pub fn propagate_only(
        &self,
        batch: &[u32],
        depth: usize,
    ) -> (Vec<DenseMatrix>, MacsBreakdown, Duration) {
        let mut scratch = EngineScratch::new();
        self.propagate_only_with(batch, depth, &mut scratch)
    }

    /// [`Self::propagate_only`] reusing a caller-owned scratch, so a
    /// stream of batches pays `O(visited)` per batch rather than `O(n)`
    /// workspace setup.
    ///
    /// # Panics
    /// Same contract as [`Self::propagate_only`].
    pub fn propagate_only_with(
        &self,
        batch: &[u32],
        depth: usize,
        scratch: &mut EngineScratch,
    ) -> (Vec<DenseMatrix>, MacsBreakdown, Duration) {
        assert!(depth >= 1, "depth must be positive");
        let start = Instant::now();
        let mut macs = MacsBreakdown::default();
        if batch.is_empty() {
            let f = self.features.cols();
            return (
                vec![DenseMatrix::zeros(0, f); depth + 1],
                macs,
                start.elapsed(),
            );
        }
        let cfg = InferenceConfig {
            t_min: depth,
            t_max: depth,
            nap: NapMode::Fixed,
            batch_size: batch.len(),
            parallel_spmm: false,
        };
        // At fixed depth every node exits together at `depth`, so the
        // capturing head observes exactly `X^(0..=depth)` aligned with
        // the batch; its logits are discarded.
        let captured = std::cell::RefCell::new(Vec::new());
        let mut feature_time = Duration::ZERO;
        let mut predictions = vec![usize::MAX; batch.len()];
        let mut depths = vec![0usize; batch.len()];
        let mut histogram = vec![0usize; depth];
        self.infer_batch(
            batch,
            0,
            &cfg,
            &|_, feats| {
                *captured.borrow_mut() = feats.to_vec();
                DenseMatrix::zeros(feats[0].rows(), 1)
            },
            &|_| 0,
            scratch,
            &mut macs,
            &mut feature_time,
            &mut predictions,
            &mut depths,
            &mut histogram,
            false,
        );
        (captured.into_inner(), macs, start.elapsed())
    }

    /// One batch of Algorithm 1 (lines 2–17) on the active-set engine.
    ///
    /// `with_stationary` disables the line-2 stationary computation for
    /// the propagate-only path (which must not charge stationary MACs);
    /// it must be `true` for every adaptive NAP mode.
    #[allow(clippy::too_many_arguments)]
    fn infer_batch(
        &self,
        batch: &[u32],
        batch_offset: usize,
        cfg: &InferenceConfig,
        head: &dyn Fn(usize, &[DenseMatrix]) -> DenseMatrix,
        head_macs: &dyn Fn(usize) -> u64,
        scratch: &mut EngineScratch,
        macs: &mut MacsBreakdown,
        feature_time: &mut Duration,
        predictions: &mut [usize],
        depths: &mut [usize],
        histogram: &mut [usize],
        with_stationary: bool,
    ) {
        if batch.is_empty() {
            return;
        }
        debug_assert!(
            with_stationary || matches!(cfg.nap, NapMode::Fixed),
            "adaptive NAP modes need the stationary rows"
        );
        let f = self.features.cols();
        let fp0 = Instant::now();
        scratch.begin_batch(self.adj.n(), batch, cfg.t_max, f);

        // Line 2: stationary rows for the batch.
        if with_stationary {
            self.stationary.rows_into(batch, &mut scratch.x_inf);
            macs.stationary += batch.len() as u64 * self.stationary.macs_per_row();
        }

        // NAP_u precomputes every node's exit depth from Eq. (10) before
        // propagation (O(1) per node: a sqrt, a division and two logs).
        // Indexed by original batch row, like the history.
        let assigned: Vec<usize> = match cfg.nap {
            NapMode::UpperBound { ts } => {
                macs.nap += batch.len() as u64 * 4;
                upper_bound::assign_depths(
                    &self.adj,
                    batch,
                    ts,
                    self.lambda2(),
                    self.total_tilde_degree,
                    cfg.t_min,
                    cfg.t_max,
                )
            }
            _ => Vec::new(),
        };

        // Line 3: supporting hop sets; the widest becomes the initial
        // support frontier, mapped in the stamped column map.
        scratch
            .bfs
            .hop_sets_into(&self.adj, batch, cfg.t_max, &mut scratch.plan.sets);
        scratch.plan.init_support();

        // History level 0 is X^(0) of the batch; the support features
        // start as X^(0) of the widest frontier.
        for (r, &v) in batch.iter().enumerate() {
            scratch.history[0]
                .row_mut(r)
                .copy_from_slice(self.features.row(v as usize));
        }
        scratch
            .h_prev
            .reset_for_overwrite(scratch.plan.support().len(), f);
        for (t, &g) in scratch.plan.support().iter().enumerate() {
            scratch
                .h_prev
                .row_mut(t)
                .copy_from_slice(self.features.row(g as usize));
        }
        *feature_time += fp0.elapsed();

        for l in 1..=cfg.t_max {
            let fp = Instant::now();
            let support_l = std::mem::take(&mut scratch.plan.sets[l]);
            // The column map still describes the previous support (the
            // rows of h_prev); N(sets[l]) ⊆ sets[l−1] guarantees every
            // neighbor is mapped.
            let step_macs = self.norm_adj.spmm_gather_into(
                &support_l,
                scratch.plan.col_map(),
                &scratch.h_prev,
                &mut scratch.h_next,
                cfg.parallel_spmm,
            );
            macs.propagation += step_macs;
            scratch.plan.advance(support_l);

            // Locate active rows in the new support (O(1) stamped
            // lookups) and extend the full-width history.
            scratch.active_rows.clear();
            for &g in scratch.active.nodes() {
                let local = scratch.plan.local(g);
                debug_assert_ne!(local, u32::MAX, "active ⊆ every hop set");
                scratch.active_rows.push(local as usize);
            }
            let hist_l = &mut scratch.history[l];
            for (a, &row) in scratch.active_rows.iter().enumerate() {
                hist_l
                    .row_mut(scratch.active.origs()[a])
                    .copy_from_slice(scratch.h_next.row(row));
            }
            *feature_time += fp.elapsed();

            // Lines 6–15: early exits.
            let at_final = l == cfg.t_max;
            scratch.exit_mask.clear();
            scratch.exit_mask.resize(scratch.active.len(), at_final);
            if !at_final && l >= cfg.t_min {
                let fp = Instant::now();
                match cfg.nap {
                    NapMode::Fixed => {}
                    NapMode::Distance { ts } => {
                        for a in 0..scratch.active.len() {
                            let cur = scratch.h_next.row(scratch.active_rows[a]);
                            let stat = scratch.x_inf.row(scratch.active.origs()[a]);
                            scratch.exit_mask[a] = l2_distance(cur, stat) < ts;
                        }
                        macs.nap += scratch.active.len() as u64 * napd::macs_per_node(f);
                    }
                    NapMode::Gate => {
                        // nai-lint: allow(hot-path-panic) -- Gate mode asserts
                        // gates.is_some() at function entry; unreachable here.
                        let gates = self.gates.as_ref().expect("validated above");
                        if l < gates.k() {
                            let (h_next, x_inf) = (&scratch.h_next, &scratch.x_inf);
                            let rows = scratch
                                .active_rows
                                .iter()
                                .zip(scratch.active.origs())
                                .map(|(&r, &o)| (h_next.row(r), x_inf.row(o)));
                            gates.decide_rows(l, rows, &mut scratch.exit_mask);
                            macs.nap += scratch.active.len() as u64 * gates.macs_per_node();
                        }
                    }
                    NapMode::UpperBound { .. } => {
                        // Depths were fixed before propagation; exiting here
                        // costs no feature comparison at all.
                        for a in 0..scratch.active.len() {
                            scratch.exit_mask[a] = assigned[scratch.active.origs()[a]] == l;
                        }
                    }
                }
                *feature_time += fp.elapsed();
            }

            if scratch.exit_mask.iter().any(|&e| e) {
                // Compact the index vectors; the history matrices stay
                // where they are (rows addressed by original batch row).
                let exited = scratch.active.apply_exits(&scratch.exit_mask);

                // Classify the exiting nodes with f^(l) (line 12/17),
                // gathering only their rows from the history.
                let exit_feats: Vec<DenseMatrix> = scratch.history[..=l]
                    .iter()
                    // nai-lint: allow(hot-path-panic) -- `exited` is a subset of
                    // the active set, which indexes these same history matrices.
                    .map(|m| m.gather_rows(exited).expect("exit rows"))
                    .collect();
                let logits = head(l, &exit_feats);
                macs.classification += exited.len() as u64 * head_macs(l);
                let preds = argmax_rows(&logits);
                for (t, &orig) in exited.iter().enumerate() {
                    predictions[batch_offset + orig] = preds[t];
                    depths[batch_offset + orig] = l;
                    histogram[l - 1] += 1;
                }

                if scratch.active.is_empty() {
                    scratch.plan.finish();
                    return; // whole batch classified
                }

                // Line 5 revisited: shrink the future supporting sets to
                // the survivors' neighborhoods, in place.
                if l < cfg.t_max {
                    let fp = Instant::now();
                    scratch.bfs.shrink_hop_sets(
                        &self.adj,
                        scratch.active.nodes(),
                        &mut scratch.plan.sets[l + 1..=cfg.t_max],
                        cfg.t_max - l - 1,
                    );
                    *feature_time += fp.elapsed();
                }
            }

            std::mem::swap(&mut scratch.h_prev, &mut scratch.h_next);
        }
        // Defensive: the forced exit at t_max always empties the batch
        // above, but keep the column-map invariant on every path.
        scratch.plan.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InferenceConfig;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::normalize::normalized_adjacency;
    use nai_graph::Convolution;
    use nai_models::propagate_features;
    use nai_models::train::train_depth_classifier;
    use nai_models::ModelKind;
    use nai_nn::adam::Adam;
    use nai_nn::trainer::TrainConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a small engine trained transductively (tests only exercise
    /// the inference mechanics, not the inductive protocol — the pipeline
    /// tests cover that).
    fn engine(k: usize) -> (NaiEngine, Graph, Vec<u32>) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 300,
                num_classes: 3,
                feature_dim: 8,
                avg_degree: 8.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(77),
        );
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let feats = propagate_features(&norm, &g.features, k);
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        let train: Vec<u32> = (0..200u32).collect();
        let val: Vec<u32> = (200..250u32).collect();
        let test: Vec<u32> = (250..300u32).collect();
        let mut classifiers = Vec::new();
        for l in 1..=k {
            let mut rng = StdRng::seed_from_u64(100 + l as u64);
            let mut clf = DepthClassifier::new(ModelKind::Sgc, l, 8, 3, &[16], 0.0, &mut rng);
            train_depth_classifier(
                &mut clf,
                &feats,
                &train,
                &g.labels,
                None,
                &val,
                &TrainConfig {
                    epochs: 40,
                    patience: 10,
                    adam: Adam::new(0.02, 0.0),
                    ..TrainConfig::default()
                },
            );
            classifiers.push(clf);
        }
        let engine = NaiEngine::new(&g, norm, st, classifiers, None);
        (engine, g, test)
    }

    #[test]
    fn fixed_mode_uses_exactly_tmax() {
        let (engine, g, test) = engine(3);
        let res = engine.infer(&test, &g.labels, &InferenceConfig::fixed(2));
        assert!(res.depths.iter().all(|&d| d == 2));
        // Histogram is sized by t_max, not k.
        assert_eq!(res.report.depth_histogram, vec![0, 50]);
        assert_eq!(res.report.num_nodes, 50);
    }

    #[test]
    fn fixed_at_k_matches_vanilla_accuracy_shape() {
        let (engine, g, test) = engine(3);
        let res = engine.infer(&test, &g.labels, &InferenceConfig::fixed(3));
        assert!(res.report.accuracy > 0.5, "acc {}", res.report.accuracy);
        assert!(res.predictions.iter().all(|&p| p < 3));
    }

    #[test]
    fn distance_mode_exits_early_and_saves_macs() {
        let (engine, g, test) = engine(3);
        let fixed = engine.infer(&test, &g.labels, &InferenceConfig::fixed(3));
        // Generous threshold: everything exits at t_min.
        let eager = engine.infer(
            &test,
            &g.labels,
            &InferenceConfig::distance(f32::INFINITY, 1, 3),
        );
        assert!(eager.depths.iter().all(|&d| d == 1));
        assert!(
            eager.report.macs.propagation < fixed.report.macs.propagation,
            "eager {} vs fixed {}",
            eager.report.macs.propagation,
            fixed.report.macs.propagation
        );
        // Zero threshold: nobody exits early.
        let never = engine.infer(&test, &g.labels, &InferenceConfig::distance(0.0, 1, 3));
        assert!(never.depths.iter().all(|&d| d == 3));
    }

    #[test]
    fn tmin_blocks_exits_before_it() {
        let (engine, g, test) = engine(3);
        let res = engine.infer(
            &test,
            &g.labels,
            &InferenceConfig::distance(f32::INFINITY, 2, 3),
        );
        assert!(res.depths.iter().all(|&d| d == 2));
    }

    #[test]
    fn histogram_matches_depths() {
        let (engine, g, test) = engine(3);
        let res = engine.infer(&test, &g.labels, &InferenceConfig::distance(2.0, 1, 3));
        let mut manual = vec![0usize; 3];
        for &d in &res.depths {
            manual[d - 1] += 1;
        }
        assert_eq!(res.report.depth_histogram, manual);
        assert_eq!(res.report.depth_histogram.iter().sum::<usize>(), test.len());
    }

    #[test]
    fn batch_size_does_not_change_predictions() {
        let (engine, g, test) = engine(3);
        let a = engine.infer(
            &test,
            &g.labels,
            &InferenceConfig {
                batch_size: 7,
                ..InferenceConfig::distance(1.0, 1, 3)
            },
        );
        let b = engine.infer(
            &test,
            &g.labels,
            &InferenceConfig {
                batch_size: 50,
                ..InferenceConfig::distance(1.0, 1, 3)
            },
        );
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.depths, b.depths);
    }

    #[test]
    fn empty_test_set_is_safe() {
        let (engine, g, _) = engine(2);
        let res = engine.infer(&[], &g.labels, &InferenceConfig::fixed(2));
        assert_eq!(res.predictions.len(), 0);
        assert_eq!(res.report.accuracy, 0.0);
    }

    #[test]
    fn online_propagation_matches_offline_at_fixed_depth() {
        // The frontier-propagated features must equal full-graph offline
        // propagation for the test nodes (depth = t_max, no exits).
        let (engine, g, test) = engine(3);
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let offline = propagate_features(&norm, &g.features, 3);
        let res = engine.infer(&test, &g.labels, &InferenceConfig::fixed(3));
        // Compare via classifier agreement: predictions from offline
        // features must match the engine's.
        let idx: Vec<usize> = test.iter().map(|&v| v as usize).collect();
        let gathered: Vec<DenseMatrix> = offline
            .iter()
            .map(|m| m.gather_rows(&idx).unwrap())
            .collect();
        let logits = engine.classifier(3).forward(&gathered);
        let offline_preds = argmax_rows(&logits);
        assert_eq!(res.predictions, offline_preds);
    }

    #[test]
    fn upper_bound_mode_assigns_depths_without_feature_comparisons() {
        let (engine, g, test) = engine(3);
        let res = engine.infer(&test, &g.labels, &InferenceConfig::upper_bound(0.5, 1, 3));
        assert_eq!(res.predictions.len(), test.len());
        assert!(res.depths.iter().all(|&d| (1..=3).contains(&d)));
        // NAP MACs are O(1) per node — far below one distance evaluation
        // (which costs f MACs per node per depth).
        assert!(res.report.macs.nap <= 4 * test.len() as u64);
        // Assigned depths must agree with the standalone policy function.
        let expected = crate::upper_bound::assign_depths(
            &g.adj,
            &test,
            0.5,
            engine.lambda2(),
            engine.total_tilde_degree(),
            1,
            3,
        );
        assert_eq!(res.depths, expected);
    }

    #[test]
    fn upper_bound_high_degree_exits_no_later_than_low_degree() {
        let (engine, g, test) = engine(3);
        let res = engine.infer(&test, &g.labels, &InferenceConfig::upper_bound(0.5, 1, 3));
        let mut pairs: Vec<(usize, usize)> = test
            .iter()
            .zip(&res.depths)
            .map(|(&v, &d)| (g.adj.row_nnz(v as usize), d))
            .collect();
        pairs.sort_by_key(|&(deg, _)| deg);
        let half = pairs.len() / 2;
        let low: f64 = pairs[..half].iter().map(|&(_, d)| d as f64).sum::<f64>() / half as f64;
        let high: f64 =
            pairs[half..].iter().map(|&(_, d)| d as f64).sum::<f64>() / (pairs.len() - half) as f64;
        assert!(
            high <= low + f64::EPSILON,
            "high-degree mean depth {high:.2} must not exceed low-degree {low:.2}"
        );
    }

    #[test]
    fn parallel_inference_is_bit_identical_with_serial() {
        let (engine, g, test) = engine(3);
        for cfg in [
            InferenceConfig::fixed(3),
            InferenceConfig {
                batch_size: 7,
                ..InferenceConfig::distance(1.0, 1, 3)
            },
            InferenceConfig {
                batch_size: 13,
                ..InferenceConfig::upper_bound(0.5, 1, 3)
            },
        ] {
            let serial = engine.infer(&test, &g.labels, &cfg);
            for threads in [1, 2, 4, 7] {
                let par = engine.infer_parallel(&test, &g.labels, &cfg, threads);
                assert_eq!(serial.predictions, par.predictions, "{threads} threads");
                assert_eq!(serial.depths, par.depths, "{threads} threads");
                assert_eq!(
                    serial.report.macs.total(),
                    par.report.macs.total(),
                    "{threads} threads"
                );
                assert_eq!(
                    serial.report.depth_histogram, par.report.depth_histogram,
                    "{threads} threads"
                );
                assert_eq!(serial.report.batches, par.report.batches);
            }
        }
    }

    #[test]
    fn parallel_with_more_threads_than_batches() {
        let (engine, g, test) = engine(2);
        let cfg = InferenceConfig {
            batch_size: 100, // one batch for 50 test nodes
            ..InferenceConfig::fixed(2)
        };
        let par = engine.infer_parallel(&test, &g.labels, &cfg, 8);
        assert_eq!(par.predictions.len(), test.len());
        assert_eq!(par.report.batches, 1);
    }

    #[test]
    fn parallel_empty_test_set_is_safe() {
        let (engine, g, _) = engine(2);
        let res = engine.infer_parallel(&[], &g.labels, &InferenceConfig::fixed(2), 4);
        assert_eq!(res.predictions.len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (engine, g, test) = engine(2);
        let _ = engine.infer_parallel(&test, &g.labels, &InferenceConfig::fixed(2), 0);
    }

    #[test]
    fn lambda2_is_cached_and_in_range() {
        let (engine, _, _) = engine(2);
        let a = engine.lambda2();
        let b = engine.lambda2();
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a), "lambda2 {a}");
    }

    #[test]
    #[should_panic(expected = "invalid inference config")]
    fn invalid_config_panics() {
        let (engine, g, test) = engine(2);
        let bad = InferenceConfig::distance(0.5, 1, 9);
        let _ = engine.infer(&test, &g.labels, &bad);
    }

    #[test]
    #[should_panic(expected = "no trained gates")]
    fn gate_mode_without_gates_panics() {
        let (engine, g, test) = engine(2);
        let _ = engine.infer(&test, &g.labels, &InferenceConfig::gate(1, 2));
    }
}
