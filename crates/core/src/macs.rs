//! Multiply-accumulate accounting (the MACs / FP MACs columns of the
//! paper's tables and the complexity formulas of Table I).
//!
//! Counters are incremented by the kernels that actually execute, so the
//! numbers reflect the adaptive behaviour (shrinking frontiers, early
//! exits) rather than worst-case formulas. "Feature processing" (FP)
//! covers propagation + NAP checks + stationary state, matching the
//! paper's split between FP MACs and total MACs.

use serde::{Deserialize, Serialize};

/// MACs split by pipeline stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacsBreakdown {
    /// Feature propagation (SpMM over the supporting frontier).
    pub propagation: u64,
    /// Stationary-state computation (rank-1 precompute + per-row emits).
    pub stationary: u64,
    /// NAP decisions: distance evaluations or gate forwards.
    pub nap: u64,
    /// Multi-depth combination + classifier MLPs.
    pub classification: u64,
}

impl MacsBreakdown {
    /// Total MACs across all stages.
    pub fn total(&self) -> u64 {
        self.propagation + self.stationary + self.nap + self.classification
    }

    /// Feature-processing MACs (everything except classification) — the
    /// "FP MACs" column of Tables V and IX–XI.
    pub fn feature_processing(&self) -> u64 {
        self.propagation + self.stationary + self.nap
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &MacsBreakdown) {
        self.propagation += other.propagation;
        self.stationary += other.stationary;
        self.nap += other.nap;
        self.classification += other.classification;
    }

    /// Mega-MACs (the paper reports `#mMACs`).
    pub fn total_mmacs(&self) -> f64 {
        self.total() as f64 / 1e6
    }

    /// Feature-processing mega-MACs.
    pub fn fp_mmacs(&self) -> f64 {
        self.feature_processing() as f64 / 1e6
    }
}

/// Closed-form vanilla inference complexities of Table I (per the paper's
/// notation: `n` nodes to classify, `m` edges in their supporting
/// subgraph, `f` feature dim, `k` depth, `P` classifier layers, `c`
/// classes). Used by the `table1_complexity` bench to cross-check the
/// measured counters.
pub mod table1 {
    /// SGC vanilla: `O(k·m·f + n·f·c)` (linear classifier).
    pub fn sgc(k: u64, m_nnz: u64, n: u64, f: u64, c: u64) -> u64 {
        k * m_nnz * f + n * f * c
    }

    /// SIGN vanilla: `O(k·m·f + k·P·n·f·c)` — concat classifier input grows
    /// with `k`.
    pub fn sign(k: u64, m_nnz: u64, n: u64, f: u64, c: u64) -> u64 {
        k * m_nnz * f + (k + 1) * n * f * c
    }

    /// S²GC vanilla: `O(k·m·f + k·n·f + n·f·c)` — the `k·n·f` term is the
    /// depth averaging.
    pub fn s2gc(k: u64, m_nnz: u64, n: u64, f: u64, c: u64) -> u64 {
        k * m_nnz * f + (k + 1) * n * f + n * f * c
    }

    /// GAMLP vanilla: `O(k·m·f + n·f·c)` plus the node-wise attention
    /// (`2·(k+1)·n·f` in our accounting).
    pub fn gamlp(k: u64, m_nnz: u64, n: u64, f: u64, c: u64) -> u64 {
        k * m_nnz * f + 2 * (k + 1) * n * f + n * f * c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fp_split() {
        let m = MacsBreakdown {
            propagation: 100,
            stationary: 10,
            nap: 5,
            classification: 50,
        };
        assert_eq!(m.total(), 165);
        assert_eq!(m.feature_processing(), 115);
        assert!((m.total_mmacs() - 165e-6).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates() {
        let mut a = MacsBreakdown::default();
        let b = MacsBreakdown {
            propagation: 1,
            stationary: 2,
            nap: 3,
            classification: 4,
        };
        a.add(&b);
        a.add(&b);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn table1_orderings_hold() {
        // For equal parameters, SIGN costs more classification than SGC,
        // and S2GC adds the averaging term.
        let (k, m, n, f, c) = (5u64, 10_000, 1_000, 64, 16);
        assert!(table1::sign(k, m, n, f, c) > table1::sgc(k, m, n, f, c));
        assert!(table1::s2gc(k, m, n, f, c) > table1::sgc(k, m, n, f, c));
        assert!(table1::gamlp(k, m, n, f, c) > table1::sgc(k, m, n, f, c));
    }

    #[test]
    fn propagation_term_dominates_at_scale() {
        // The paper's premise: k·m·f dwarfs classification on large graphs.
        let (k, m, n, f, c) = (5u64, 100_000_000, 2_000_000, 100, 47);
        let total = table1::sgc(k, m, n, f, c);
        let prop = k * m * f;
        assert!(prop as f64 / total as f64 > 0.8);
    }
}
