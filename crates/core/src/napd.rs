//! Distance-based Node-Adaptive Propagation (NAP_d, Eq. 8–9).
//!
//! A node's smoothing status is measured *explicitly* as the L2 distance
//! between its current propagated feature and its stationary state; once
//! the distance drops below the global threshold `T_s`, further propagation
//! is redundant (and risks over-smoothing), so the node exits and is
//! classified by `f^(l)`.

use nai_linalg::ops::l2_distance;
use nai_linalg::DenseMatrix;

/// Per-node distances `∆^(l)_i = ‖X^(l)_i − X^(∞)_i‖` (Eq. 8).
///
/// Rows of `current` and `stationary` must be aligned.
///
/// # Panics
/// Panics if the shapes differ.
pub fn distances(current: &DenseMatrix, stationary: &DenseMatrix) -> Vec<f32> {
    assert_eq!(current.shape(), stationary.shape(), "aligned rows required");
    (0..current.rows())
        .map(|r| l2_distance(current.row(r), stationary.row(r)))
        .collect()
}

/// Exit decisions at one depth: `true` = stop propagating (Eq. 9).
pub fn exit_mask(current: &DenseMatrix, stationary: &DenseMatrix, ts: f32) -> Vec<bool> {
    distances(current, stationary)
        .into_iter()
        .map(|d| d < ts)
        .collect()
}

/// MACs per node for one distance evaluation (`f` multiply-accumulates:
/// one fused subtract-square-accumulate per feature).
pub fn macs_per_node(f: usize) -> u64 {
    f as u64
}

/// Offline personalized depth (Eq. 9) for transductive analysis: given all
/// propagated levels of one node's features (`X^(0)` first) and its
/// stationary row, returns the smallest depth `l ∈ [1, k]` with
/// `∆^(l) < ts`, or `k` when none qualifies.
///
/// # Panics
/// Panics unless `levels` holds at least `X^(0)` and `X^(1)`
/// (`levels.len() >= 2`): with only `X^(0)` there is no propagated level
/// to exit at, and silently claiming depth 1 would point at a classifier
/// that was never trained.
pub fn personalized_depth(levels: &[&[f32]], stationary: &[f32], ts: f32) -> usize {
    assert!(
        levels.len() >= 2,
        "personalized_depth needs X^(0) and at least one propagated level, got {}",
        levels.len()
    );
    let k = levels.len() - 1;
    for (l, row) in levels.iter().enumerate().skip(1) {
        if l2_distance(row, stationary) < ts {
            return l;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::StationaryState;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::{normalized_adjacency, Convolution};
    use nai_models::propagate_features;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distances_shrink_with_depth() {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 200,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(1),
        );
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let feats = propagate_features(&norm, &g.features, 8);
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        let xinf = st.full();
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let d1 = mean(&distances(&feats[1], &xinf));
        let d4 = mean(&distances(&feats[4], &xinf));
        let d8 = mean(&distances(&feats[8], &xinf));
        assert!(d4 < d1, "d1 {d1} d4 {d4}");
        assert!(d8 < d4, "d4 {d4} d8 {d8}");
    }

    #[test]
    fn high_degree_nodes_exit_earlier() {
        // Eq. (10): personalized depth is negatively correlated with
        // degree. The ordering is cleanest for the row-stochastic operator
        // (γ = 0), where every node shares the same stationary row and the
        // distance purely measures mixing speed; under symmetric
        // normalization the √d̃ scaling of `X^(∞)` confounds absolute
        // distances. Compare the highest- and lowest-degree deciles under a
        // common threshold.
        let g = generate(
            &GeneratorConfig {
                num_nodes: 600,
                avg_degree: 8.0,
                power_law_exponent: 2.2,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(2),
        );
        let norm = normalized_adjacency(&g.adj, Convolution::ReverseTransition);
        let k = 8;
        let feats = propagate_features(&norm, &g.features, k);
        let st = StationaryState::compute(&g.adj, &g.features, 0.0);
        let xinf = st.full();
        // Mid-range threshold: mean distance at depth k/2.
        let ts = {
            let d = distances(&feats[k / 2], &xinf);
            d.iter().sum::<f32>() / d.len() as f32
        };
        let degrees = g.adj.degrees();
        let mut order: Vec<usize> = (0..g.num_nodes()).collect();
        order.sort_by(|&a, &b| degrees[b].partial_cmp(&degrees[a]).unwrap());
        let depth_of = |node: usize| {
            let levels: Vec<&[f32]> = feats.iter().map(|m| m.row(node)).collect();
            personalized_depth(&levels, xinf.row(node), ts)
        };
        let decile = g.num_nodes() / 10;
        let high: f32 = order[..decile]
            .iter()
            .map(|&i| depth_of(i) as f32)
            .sum::<f32>()
            / decile as f32;
        let low: f32 = order[g.num_nodes() - decile..]
            .iter()
            .map(|&i| depth_of(i) as f32)
            .sum::<f32>()
            / decile as f32;
        assert!(
            high < low,
            "high-degree mean depth {high} should be below low-degree {low}"
        );
    }

    #[test]
    fn threshold_monotonicity() {
        // Larger T_s can only produce earlier (or equal) exits.
        let g = generate(
            &GeneratorConfig {
                num_nodes: 100,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(3),
        );
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let feats = propagate_features(&norm, &g.features, 6);
        let st = StationaryState::compute(&g.adj, &g.features, 0.5);
        let xinf = st.full();
        for node in [0usize, 10, 50] {
            let levels: Vec<&[f32]> = feats.iter().map(|m| m.row(node)).collect();
            let d_small = personalized_depth(&levels, xinf.row(node), 0.05);
            let d_large = personalized_depth(&levels, xinf.row(node), 5.0);
            assert!(d_large <= d_small, "node {node}: {d_large} > {d_small}");
        }
    }

    #[test]
    fn exit_mask_thresholds() {
        let cur = DenseMatrix::from_vec(2, 2, vec![0.0, 0.0, 3.0, 4.0]);
        let stat = DenseMatrix::zeros(2, 2);
        let mask = exit_mask(&cur, &stat, 1.0);
        assert_eq!(mask, vec![true, false]); // distances 0 and 5
    }

    #[test]
    fn zero_threshold_never_exits() {
        let cur = DenseMatrix::from_vec(1, 2, vec![0.0, 0.0]);
        let stat = DenseMatrix::zeros(1, 2);
        // Distance 0 is NOT < 0.
        assert_eq!(exit_mask(&cur, &stat, 0.0), vec![false]);
    }

    #[test]
    fn infinite_threshold_always_exits() {
        let cur = DenseMatrix::from_vec(1, 2, vec![100.0, -50.0]);
        let stat = DenseMatrix::zeros(1, 2);
        assert_eq!(exit_mask(&cur, &stat, f32::INFINITY), vec![true]);
    }

    #[test]
    fn macs_is_feature_dim() {
        assert_eq!(macs_per_node(128), 128);
    }

    #[test]
    #[should_panic(expected = "at least one propagated level")]
    fn personalized_depth_rejects_unpropagated_input() {
        // Only X^(0): no exit depth exists, so claiming one would name a
        // classifier that was never trained.
        let x0 = [1.0f32, 2.0];
        let stat = [0.0f32, 0.0];
        let _ = personalized_depth(&[&x0], &stat, 10.0);
    }

    #[test]
    fn personalized_depth_caps_at_deepest_level() {
        // Nothing qualifies under a zero threshold → depth k.
        let x0 = [1.0f32, 2.0];
        let x1 = [0.5f32, 1.0];
        let stat = [0.0f32, 0.0];
        assert_eq!(personalized_depth(&[&x0, &x1], &stat, 0.0), 1);
    }
}
