//! Evaluation metrics matching §IV-A of the paper: ACC, MACs, FP MACs,
//! averaged inference time and averaged feature-processing time.

use crate::macs::MacsBreakdown;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Aggregated result of an inference run over a test set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Number of test nodes evaluated.
    pub num_nodes: usize,
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// MACs split by stage, summed over all batches.
    pub macs: MacsBreakdown,
    /// Total wall-clock inference time.
    pub total_time: Duration,
    /// Wall-clock time spent in feature processing (supporting-node
    /// sampling + propagation + stationary + NAP checks).
    pub feature_time: Duration,
    /// Nodes that exited at each depth (`histogram[l]` = exits at depth
    /// `l+1`), the paper's Table VI "node distribution".
    pub depth_histogram: Vec<usize>,
    /// Number of batches processed.
    pub batches: usize,
}

impl InferenceReport {
    /// Average MACs per node in mega-MACs (the `#mMACs` columns).
    pub fn mmacs_per_node(&self) -> f64 {
        self.macs.total() as f64 / 1e6 / self.num_nodes.max(1) as f64
    }

    /// Average feature-processing MACs per node in mega-MACs.
    pub fn fp_mmacs_per_node(&self) -> f64 {
        self.macs.feature_processing() as f64 / 1e6 / self.num_nodes.max(1) as f64
    }

    /// Average inference time per node in milliseconds (×1000 nodes —
    /// reported per node like the paper's "averaged inference time per
    /// node").
    pub fn time_ms_per_node(&self) -> f64 {
        self.total_time.as_secs_f64() * 1e3 / self.num_nodes.max(1) as f64
    }

    /// Average feature-processing time per node in milliseconds.
    pub fn fp_time_ms_per_node(&self) -> f64 {
        self.feature_time.as_secs_f64() * 1e3 / self.num_nodes.max(1) as f64
    }

    /// Average personalized propagation depth `q` (Table I's `q`).
    pub fn mean_depth(&self) -> f64 {
        let total: usize = self.depth_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = self
            .depth_histogram
            .iter()
            .enumerate()
            .map(|(l, &c)| (l + 1) * c)
            .sum();
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> InferenceReport {
        InferenceReport {
            num_nodes: 1000,
            accuracy: 0.7,
            macs: MacsBreakdown {
                propagation: 4_000_000,
                stationary: 1_000_000,
                nap: 500_000,
                classification: 2_500_000,
            },
            total_time: Duration::from_millis(800),
            feature_time: Duration::from_millis(600),
            depth_histogram: vec![100, 400, 500],
            batches: 2,
        }
    }

    #[test]
    fn per_node_metrics() {
        let r = report();
        assert!((r.mmacs_per_node() - 8e-3).abs() < 1e-9);
        assert!((r.fp_mmacs_per_node() - 5.5e-3).abs() < 1e-9);
        assert!((r.time_ms_per_node() - 0.8).abs() < 1e-9);
        assert!((r.fp_time_ms_per_node() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn mean_depth_weighted() {
        let r = report();
        // (1·100 + 2·400 + 3·500) / 1000 = 2.4
        assert!((r.mean_depth() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = InferenceReport {
            num_nodes: 0,
            accuracy: 0.0,
            macs: MacsBreakdown::default(),
            total_time: Duration::ZERO,
            feature_time: Duration::ZERO,
            depth_histogram: vec![],
            batches: 0,
        };
        assert_eq!(r.mmacs_per_node(), 0.0);
        assert_eq!(r.mean_depth(), 0.0);
    }
}
