//! Node-Adaptive Inference (NAI) — the paper's primary contribution.
//!
//! NAI accelerates the *inductive* inference of Scalable GNNs by assigning
//! every test node a personalized propagation depth. The crate implements
//! the full framework of Fig. 2:
//!
//! * [`stationary`] — the infinite-depth feature state `X^(∞)`
//!   (Eq. 6–7), computed in `O(n·f)` as a rank-1 object per connected
//!   component;
//! * [`napd`] — Distance-based Node-Adaptive Propagation: exit when
//!   `‖X^(l)_i − X^(∞)_i‖ < T_s` (Eq. 8–9), plus the Eq. (10) depth
//!   upper bound in [`upper_bound`];
//! * [`gates`] — Gate-based NAP: per-depth trained gates with
//!   Gumbel-softmax relaxation and the inference-time penalty mechanism
//!   (Eq. 11–13);
//! * [`inference`] — Algorithm 1: batched online propagation with
//!   per-node early exit and shrinking supporting frontiers;
//! * [`active`] — the allocation-free active-set / frontier-plan
//!   bookkeeping both the static and streaming engines run on;
//! * [`distill`] — Inception Distillation (Eq. 14–21): Single-Scale KD
//!   from `f^(k)` and Multi-Scale KD from a trainable ensemble teacher;
//! * [`macs`] / [`metrics`] — the MACs accounting of Table I and the
//!   evaluation metrics of §IV (ACC, MACs, FP MACs, Time, FP Time);
//! * [`pipeline`] — end-to-end training orchestration (propagate → base
//!   classifier → distillation → gates) producing a ready
//!   [`inference::NaiEngine`].

pub mod active;
pub mod checkpoint;
pub mod config;
pub mod distill;
pub mod eval;
pub mod gates;
pub mod inference;
pub mod macs;
pub mod metrics;
pub mod napd;
pub mod pipeline;
pub mod stationary;
pub mod upper_bound;

pub use config::{InferenceConfig, NapMode, PipelineConfig};
pub use inference::{InferenceResult, NaiEngine};
pub use metrics::InferenceReport;
pub use pipeline::{NaiPipeline, TrainedNai};
pub use stationary::StationaryState;
