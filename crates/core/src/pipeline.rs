//! End-to-end NAI training orchestration (Fig. 2, right panel).
//!
//! The pipeline realises the inductive protocol: everything below trains on
//! the subgraph induced by train ∪ val nodes; the produced
//! [`NaiEngine`] then deploys against the *full* graph where test nodes
//! appear as unseen.
//!
//! Steps: (1) feature propagation on the training graph → (2) base
//! classifier `f^(k)` → (3) Single-Scale Distillation → (4) Multi-Scale
//! Distillation → (optional) gate training → engine assembly with
//! full-graph adjacency and stationary state.

use crate::config::PipelineConfig;
use crate::distill::{self, MultiScaleReport};
use crate::gates::{GateSet, GateTrainConfig, GateTrainReport};
use crate::inference::NaiEngine;
use crate::stationary::StationaryState;
use nai_graph::split::build_training_view;
use nai_graph::{normalized_adjacency, Convolution, Graph, InductiveSplit};
use nai_models::{propagate_features, ModelKind};
use nai_nn::adam::Adam;
use nai_nn::trainer::{TrainConfig, TrainReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All training reports produced by the pipeline.
#[derive(Debug, Clone)]
pub struct TrainingReports {
    /// Base `f^(k)` report.
    pub base: TrainReport,
    /// Per-student Single-Scale reports (empty when disabled).
    pub single_scale: Vec<TrainReport>,
    /// Multi-Scale report (when enabled).
    pub multi_scale: Option<MultiScaleReport>,
    /// Plain-CE reports for students when Single-Scale is disabled.
    pub plain_students: Vec<TrainReport>,
    /// Gate-training report (when gates were trained).
    pub gates: Option<GateTrainReport>,
}

/// A fully trained NAI deployment plus its training telemetry.
pub struct TrainedNai {
    /// The inference engine (full-graph state + classifiers + gates).
    pub engine: NaiEngine,
    /// Highest depth `k`.
    pub k: usize,
    /// Telemetry.
    pub reports: TrainingReports,
}

/// Orchestrates NAI training for one base model on one dataset.
pub struct NaiPipeline {
    kind: ModelKind,
    cfg: PipelineConfig,
}

impl NaiPipeline {
    /// New pipeline for the given base model and configuration.
    pub fn new(kind: ModelKind, cfg: PipelineConfig) -> Self {
        Self { kind, cfg }
    }

    /// Base-model kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Trains classifiers (+ gates when `train_gates`) and assembles the
    /// engine.
    ///
    /// # Panics
    /// Panics on invalid splits or `k == 0`.
    pub fn train(&self, graph: &Graph, split: &InductiveSplit, train_gates: bool) -> TrainedNai {
        let cfg = &self.cfg;
        assert!(cfg.k >= 1, "k must be at least 1");
        // nai-lint: allow(hot-path-panic) -- deliberate precondition assert
        // (documented # Panics): training on a malformed split must abort.
        let view = build_training_view(graph, split).expect("valid split");
        let f = graph.feature_dim();
        let c = graph.num_classes;

        // (1) Propagation on the training graph.
        let norm_train = normalized_adjacency(&view.graph.adj, Convolution::Symmetric);
        let depth_feats = propagate_features(&norm_train, &view.graph.features, cfg.k);

        // Classifier stack.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut classifiers =
            distill::build_classifiers(self.kind, cfg.k, f, c, &cfg.hidden, cfg.dropout, &mut rng);
        let tcfg = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.train_batch,
            patience: cfg.patience,
            adam: Adam::new(cfg.lr, cfg.weight_decay),
            seed: cfg.seed,
        };

        // (2) Base classifier f^(k).
        let base = distill::train_base(
            &mut classifiers,
            &depth_feats,
            &view.train_local,
            &view.graph.labels,
            &view.val_local,
            &tcfg,
        );

        // (3) Single-Scale Distillation (or plain CE fallback).
        let mut single_reports = Vec::new();
        let mut plain_reports = Vec::new();
        if cfg.use_single_scale && cfg.k > 1 {
            single_reports = distill::single_scale(
                &mut classifiers,
                &depth_feats,
                &view.train_local,
                &view.graph.labels,
                &view.val_local,
                &tcfg,
                &cfg.distill,
            );
        } else {
            for l in 1..cfg.k {
                let report = nai_models::train::train_depth_classifier(
                    &mut classifiers[l - 1],
                    &depth_feats,
                    &view.train_local,
                    &view.graph.labels,
                    None,
                    &view.val_local,
                    &tcfg,
                );
                plain_reports.push(report);
            }
        }

        // (4) Multi-Scale Distillation.
        let multi = if cfg.use_multi_scale && cfg.k > 1 {
            Some(distill::multi_scale(
                &mut classifiers,
                &depth_feats,
                &view.train_local,
                &view.graph.labels,
                &view.val_local,
                &cfg.distill,
                &Adam::new(cfg.lr * 0.5, cfg.weight_decay),
                cfg.train_batch.max(128),
                cfg.seed ^ 0x5eed,
            ))
        } else {
            None
        };

        // (5) Gates (NAP_g) against the frozen classifiers.
        let gate_report;
        let gates = if train_gates && cfg.k >= 2 {
            let st_train = StationaryState::compute(&view.graph.adj, &view.graph.features, 0.5);
            let xinf_train = st_train.full();
            let mut gs = GateSet::new(f, cfg.k, &mut rng);
            let report = gs.train(
                &depth_feats,
                &xinf_train,
                &classifiers,
                &view.train_local,
                &view.graph.labels,
                &GateTrainConfig {
                    epochs: cfg.gate_epochs,
                    tau: cfg.gate_tau,
                    adam: Adam::new(cfg.lr, 0.0),
                    seed: cfg.seed ^ 0x9a7e,
                    ..GateTrainConfig::default()
                },
            );
            gate_report = Some(report);
            Some(gs)
        } else {
            gate_report = None;
            None
        };

        // (6) Full-graph deployment state.
        let norm_full = normalized_adjacency(&graph.adj, Convolution::Symmetric);
        let st_full = StationaryState::compute(&graph.adj, &graph.features, 0.5);
        let engine = NaiEngine::new(graph, norm_full, st_full, classifiers, gates);

        TrainedNai {
            engine,
            k: cfg.k,
            reports: TrainingReports {
                base,
                single_scale: single_reports,
                multi_scale: multi,
                plain_students: plain_reports,
                gates: gate_report,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InferenceConfig;
    use nai_graph::generators::{generate, GeneratorConfig};

    fn dataset() -> (Graph, InductiveSplit) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 400,
                num_classes: 3,
                feature_dim: 8,
                avg_degree: 8.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(123),
        );
        let split = InductiveSplit::random(400, 0.5, 0.2, &mut StdRng::seed_from_u64(124));
        (g, split)
    }

    fn small_cfg(k: usize) -> PipelineConfig {
        PipelineConfig {
            k,
            hidden: vec![16],
            epochs: 40,
            patience: 10,
            lr: 0.02,
            gate_epochs: 10,
            distill: crate::config::DistillConfig {
                epochs: 12,
                ensemble_r: 2,
                ..Default::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn end_to_end_inductive_pipeline_beats_chance() {
        let (g, split) = dataset();
        let pipeline = NaiPipeline::new(ModelKind::Sgc, small_cfg(3));
        let trained = pipeline.train(&g, &split, true);
        assert_eq!(trained.k, 3);
        assert!(trained.reports.base.best_val_acc > 0.5);
        assert!(trained.reports.gates.is_some());
        // Inductive inference on unseen test nodes.
        let res = trained
            .engine
            .infer(&split.test, &g.labels, &InferenceConfig::fixed(3));
        assert!(res.report.accuracy > 0.45, "acc {}", res.report.accuracy);
        // Distance NAP reduces propagation MACs.
        let nap = trained.engine.infer(
            &g.labels.iter().map(|_| 0u32).take(0).collect::<Vec<_>>(),
            &g.labels,
            &InferenceConfig::distance(0.5, 1, 3),
        );
        assert_eq!(nap.report.num_nodes, 0);
    }

    #[test]
    fn gate_mode_runs_after_pipeline() {
        let (g, split) = dataset();
        let pipeline = NaiPipeline::new(ModelKind::Sgc, small_cfg(3));
        let trained = pipeline.train(&g, &split, true);
        let res = trained
            .engine
            .infer(&split.test, &g.labels, &InferenceConfig::gate(1, 3));
        assert_eq!(res.predictions.len(), split.test.len());
        assert!(res.report.accuracy > 0.4, "acc {}", res.report.accuracy);
    }

    #[test]
    fn pipeline_without_distillation_still_works() {
        let (g, split) = dataset();
        let mut cfg = small_cfg(2);
        cfg.use_single_scale = false;
        cfg.use_multi_scale = false;
        let pipeline = NaiPipeline::new(ModelKind::Sgc, cfg);
        let trained = pipeline.train(&g, &split, false);
        assert!(trained.reports.single_scale.is_empty());
        assert!(trained.reports.multi_scale.is_none());
        assert_eq!(trained.reports.plain_students.len(), 1);
        let res = trained
            .engine
            .infer(&split.test, &g.labels, &InferenceConfig::fixed(2));
        assert!(res.report.accuracy > 0.4);
    }

    #[test]
    fn k_equals_one_pipeline() {
        let (g, split) = dataset();
        let mut cfg = small_cfg(1);
        cfg.k = 1;
        let pipeline = NaiPipeline::new(ModelKind::Sgc, cfg);
        let trained = pipeline.train(&g, &split, false);
        assert_eq!(trained.k, 1);
        let res = trained
            .engine
            .infer(&split.test, &g.labels, &InferenceConfig::fixed(1));
        assert_eq!(res.predictions.len(), split.test.len());
    }
}
