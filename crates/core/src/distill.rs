//! Inception Distillation (§III-C, Eq. 14–21).
//!
//! Early exits hand nodes to shallow classifiers; plain shallow classifiers
//! lose accuracy. Inception Distillation compensates in two stages:
//!
//! * **Single-Scale** (Eq. 14–17): the depth-`k` classifier, trained with
//!   plain cross-entropy, teaches every shallower classifier through
//!   temperature-scaled KD mixed with the hard-label loss:
//!   `L = (1−λ)·L_c + λ·T²·L_d`.
//! * **Multi-Scale** (Eq. 18–21): the `r` highest-depth classifiers form an
//!   ensemble teacher. Each member's softmax prediction `ỹ^(l)` is scored
//!   by a trainable vector `s^(l)` (`q^(l) = σ(ỹ^(l)·s^(l))`), the scores
//!   are softmax-normalised into ensemble weights, and the weighted vote
//!   `z̄ = Σ w^(l) ỹ^(l)` supervises all students via
//!   `L = L_t + (1−λ)·L_c + λ·T²·L_e`. Students *and* the scoring vectors
//!   update jointly; the depth-`k` classifier stays frozen (DESIGN.md §3
//!   note 4).

use crate::config::DistillConfig;
use nai_linalg::ops::{sigmoid, softmax_slice};
use nai_linalg::DenseMatrix;
use nai_models::train::{gather_depth_feats, train_depth_classifier, DepthDistillation};
use nai_models::{DepthClassifier, ModelKind};
use nai_nn::adam::Adam;
use nai_nn::linear::Linear;
use nai_nn::loss::{distillation_loss, softmax_cross_entropy};
use nai_nn::trainer::{TrainConfig, TrainReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds the `k` per-depth classifiers `f^(1..=k)` (untrained).
pub fn build_classifiers(
    kind: ModelKind,
    k: usize,
    feature_dim: usize,
    num_classes: usize,
    hidden: &[usize],
    dropout: f32,
    rng: &mut StdRng,
) -> Vec<DepthClassifier> {
    (1..=k)
        .map(|l| DepthClassifier::new(kind, l, feature_dim, num_classes, hidden, dropout, rng))
        .collect()
}

/// Step 2 of Fig. 2: trains the deepest classifier `f^(k)` with plain
/// cross-entropy. Returns its training report.
pub fn train_base(
    classifiers: &mut [DepthClassifier],
    depth_feats: &[DenseMatrix],
    train_idx: &[u32],
    labels: &[u32],
    val_idx: &[u32],
    cfg: &TrainConfig,
) -> TrainReport {
    let k = classifiers.len();
    train_depth_classifier(
        &mut classifiers[k - 1],
        depth_feats,
        train_idx,
        labels,
        None,
        val_idx,
        cfg,
    )
}

/// Step 3 of Fig. 2 — Single-Scale Distillation: trains `f^(1..k−1)` with
/// `f^(k)` as the teacher. Returns one report per student.
pub fn single_scale(
    classifiers: &mut [DepthClassifier],
    depth_feats: &[DenseMatrix],
    train_idx: &[u32],
    labels: &[u32],
    val_idx: &[u32],
    cfg: &TrainConfig,
    distill: &DistillConfig,
) -> Vec<TrainReport> {
    let k = classifiers.len();
    let rows: Vec<usize> = train_idx.iter().map(|&v| v as usize).collect();
    let teacher_feats = gather_depth_feats(depth_feats, k + 1, &rows);
    let teacher_logits = classifiers[k - 1].forward(&teacher_feats);
    let mut reports = Vec::with_capacity(k.saturating_sub(1));
    for l in 1..k {
        let report = train_depth_classifier(
            &mut classifiers[l - 1],
            depth_feats,
            train_idx,
            labels,
            Some(DepthDistillation {
                teacher_logits: &teacher_logits,
                temperature: distill.t_single,
                lambda: distill.lambda_single,
            }),
            val_idx,
            cfg,
        );
        reports.push(report);
    }
    reports
}

/// Outcome of Multi-Scale Distillation.
#[derive(Debug, Clone)]
pub struct MultiScaleReport {
    /// Mean student validation accuracy at the restored-best epoch.
    pub best_mean_val_acc: f64,
    /// Joint loss of the final epoch (`Σ_l L_multi^(l)` averaged).
    pub final_loss: f32,
    /// Epochs run.
    pub epochs_run: usize,
}

/// Step 4 of Fig. 2 — Multi-Scale Distillation.
///
/// Trains students `f^(1..k−1)` and the ensemble scoring vectors jointly;
/// `f^(k)` participates in the ensemble but stays frozen. Early-stops on
/// the mean student validation accuracy and restores the best snapshot.
///
/// # Panics
/// Panics if `r < 1` or `r > k`.
#[allow(clippy::too_many_arguments)]
pub fn multi_scale(
    classifiers: &mut [DepthClassifier],
    depth_feats: &[DenseMatrix],
    train_idx: &[u32],
    labels: &[u32],
    val_idx: &[u32],
    distill: &DistillConfig,
    adam: &Adam,
    batch_size: usize,
    seed: u64,
) -> MultiScaleReport {
    let k = classifiers.len();
    let r = distill.ensemble_r;
    assert!((1..=k).contains(&r), "ensemble size r={r} outside 1..={k}");
    let num_classes = classifiers[0].mlp.out_dim();
    let ensemble_depths: Vec<usize> = ((k - r + 1)..=k).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Trainable scoring vectors s^(l), one per ensemble member.
    let mut scorers: Vec<Linear> = ensemble_depths
        .iter()
        .map(|_| Linear::new(num_classes, 1, &mut rng))
        .collect();

    let n = train_idx.len();
    let batch = if batch_size == 0 || batch_size >= n {
        n
    } else {
        batch_size
    };
    let mut order: Vec<usize> = (0..n).collect();
    let val_rows: Vec<usize> = val_idx.iter().map(|&v| v as usize).collect();
    let val_labels: Vec<u32> = val_idx.iter().map(|&v| labels[v as usize]).collect();
    let val_all: Vec<usize> = (0..val_labels.len()).collect();
    let t = distill.t_multi;
    let lambda = distill.lambda_multi;

    let mut best_acc = -1.0f64;
    let mut best_snaps: Vec<_> = classifiers.iter().map(|c| c.snapshot()).collect();
    let mut final_loss = 0.0f32;
    let mut epochs_run = 0usize;

    for _ in 0..distill.epochs {
        epochs_run += 1;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut nbatches = 0usize;
        for chunk in order.chunks(batch) {
            let rows: Vec<usize> = chunk.iter().map(|&p| train_idx[p] as usize).collect();
            let feats = gather_depth_feats(depth_feats, k + 1, &rows);
            let yb: Vec<u32> = rows.iter().map(|&i| labels[i]).collect();
            let b = rows.len();

            // Student forward passes (train mode caches for backward).
            let mut logits: Vec<DenseMatrix> = Vec::with_capacity(k);
            for (l, clf) in classifiers.iter_mut().enumerate().take(k - 1) {
                clf.zero_grads();
                logits.push(clf.forward_train(&feats[..=(l + 1)], &mut rng));
            }
            // Frozen teacher f^(k).
            logits.push(classifiers[k - 1].forward(&feats));

            // Ensemble member soft predictions ỹ^(l).
            let softmaxed: Vec<DenseMatrix> = ensemble_depths
                .iter()
                .map(|&d| {
                    let mut p = logits[d - 1].clone();
                    for row in p.as_mut_slice().chunks_mut(num_classes) {
                        softmax_slice(row);
                    }
                    p
                })
                .collect();

            // Scores q^(l) = σ(ỹ^(l) s^(l)) and weights w = softmax_l(q).
            let raw_scores: Vec<DenseMatrix> = scorers
                .iter_mut()
                .zip(softmaxed.iter())
                .map(|(s, y)| s.forward(y, true))
                .collect();
            let mut w = DenseMatrix::zeros(b, r);
            for row in 0..b {
                let mut q: Vec<f32> = (0..r).map(|e| sigmoid(raw_scores[e].get(row, 0))).collect();
                softmax_slice(&mut q);
                for (e, &wv) in q.iter().enumerate() {
                    w.set(row, e, wv);
                }
            }

            // Ensemble vote z̄ = Σ w^(l) ỹ^(l) (Eq. 18) used as logits.
            let mut ensemble = DenseMatrix::zeros(b, num_classes);
            for (e, soft) in softmaxed.iter().enumerate().take(r) {
                for row in 0..b {
                    let wv = w.get(row, e);
                    let src = soft.row(row);
                    let dst = ensemble.row_mut(row);
                    for (d, &s) in dst.iter_mut().zip(src.iter()) {
                        *d += wv * s;
                    }
                }
            }

            // L_t (Eq. 20) and its gradient through the ensemble.
            let (lt, d_ens) = softmax_cross_entropy(&ensemble, &yb);

            // Backprop ensemble → (weights w, member predictions ỹ).
            // dỹ^(e) gets the direct mixing term; dw gets the vote term.
            let mut d_soft: Vec<DenseMatrix> =
                (0..r).map(|_| DenseMatrix::zeros(b, num_classes)).collect();
            let mut d_w = DenseMatrix::zeros(b, r);
            for e in 0..r {
                for row in 0..b {
                    let wv = w.get(row, e);
                    let dsrc = d_ens.row(row);
                    let ysrc = softmaxed[e].row(row);
                    let ddst = d_soft[e].row_mut(row);
                    let mut acc = 0.0f32;
                    for ((dd, &de), &yv) in ddst.iter_mut().zip(dsrc.iter()).zip(ysrc.iter()) {
                        *dd += wv * de;
                        acc += de * yv;
                    }
                    d_w.set(row, e, acc);
                }
            }
            // Softmax backward over the weight axis, then sigmoid backward
            // into the scorers and the member predictions.
            for row in 0..b {
                let wr: Vec<f32> = (0..r).map(|e| w.get(row, e)).collect();
                let dwr: Vec<f32> = (0..r).map(|e| d_w.get(row, e)).collect();
                let dot: f32 = wr.iter().zip(dwr.iter()).map(|(a, d)| a * d).sum();
                for e in 0..r {
                    let dq = wr[e] * (dwr[e] - dot);
                    let s = sigmoid(raw_scores[e].get(row, 0));
                    let draw = dq * s * (1.0 - s);
                    // Stash pre-sigmoid gradient back into a column matrix
                    // for the scorer's Linear backward (done after loop).
                    d_w.set(row, e, draw);
                }
            }
            for (e, scorer) in scorers.iter_mut().enumerate() {
                let mut col = DenseMatrix::zeros(b, 1);
                for row in 0..b {
                    col.set(row, 0, d_w.get(row, e));
                }
                scorer.zero_grads();
                let d_y_from_score = scorer.backward(&col);
                // nai-lint: allow(hot-path-panic) -- both matrices are n×c
                // softmax outputs of the same batch; dims match by construction.
                d_soft[e].add_assign(&d_y_from_score).expect("shapes");
                scorer.apply_grads(adam);
            }

            // Teacher distillation target p̄ = softmax(z̄ / T), detached.
            let ensemble_detached = ensemble.clone();

            // Per-student total loss and backward.
            let mut batch_loss = lt;
            for l in 1..k {
                let (lc, mut dz) = softmax_cross_entropy(&logits[l - 1], &yb);
                let (le, dkd) = distillation_loss(&logits[l - 1], &ensemble_detached, t);
                dz.scale(1.0 - lambda);
                // nai-lint: allow(hot-path-panic) -- dz and dkd are gradients
                // of the same n×c logits; dims match by construction.
                dz.axpy(lambda * t * t, &dkd).expect("shapes");
                // Ensemble-membership gradient from L_t (softmax backward
                // of ỹ^(l) w.r.t. z^(l)).
                if let Some(e) = ensemble_depths.iter().position(|&d| d == l) {
                    let y = &softmaxed[e];
                    let dy = &d_soft[e];
                    for row in 0..b {
                        let yr = y.row(row);
                        let dyr = dy.row(row);
                        let dot: f32 = yr.iter().zip(dyr.iter()).map(|(a, d)| a * d).sum();
                        let dzr = dz.row_mut(row);
                        for (dzv, (&yv, &dyv)) in dzr.iter_mut().zip(yr.iter().zip(dyr.iter())) {
                            *dzv += yv * (dyv - dot);
                        }
                    }
                }
                batch_loss += (1.0 - lambda) * lc + lambda * t * t * le;
                classifiers[l - 1].backward(&dz);
                classifiers[l - 1].apply_grads(adam);
            }
            epoch_loss += batch_loss;
            nbatches += 1;
        }
        final_loss = epoch_loss / nbatches.max(1) as f32;

        // Early stopping on mean student val accuracy.
        let mut acc_sum = 0.0f64;
        for l in 1..k {
            let vf = gather_depth_feats(depth_feats, l + 1, &val_rows);
            let pred = nai_linalg::ops::argmax_rows(&classifiers[l - 1].forward(&vf));
            acc_sum += nai_linalg::ops::accuracy(&pred, &val_labels, &val_all);
        }
        let mean_acc = if k > 1 { acc_sum / (k - 1) as f64 } else { 0.0 };
        if mean_acc > best_acc {
            best_acc = mean_acc;
            best_snaps = classifiers.iter().map(|c| c.snapshot()).collect();
        }
    }
    for (c, s) in classifiers.iter_mut().zip(best_snaps.iter()) {
        c.restore(s);
    }
    MultiScaleReport {
        best_mean_val_acc: best_acc.max(0.0),
        final_loss,
        epochs_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::{normalized_adjacency, Convolution};
    use nai_models::propagate_features;

    struct Fixture {
        feats: Vec<DenseMatrix>,
        labels: Vec<u32>,
        train: Vec<u32>,
        val: Vec<u32>,
    }

    fn fixture(seed: u64) -> Fixture {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 300,
                num_classes: 3,
                feature_dim: 8,
                feature_noise: 2.5,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let feats = propagate_features(&norm, &g.features, 4);
        Fixture {
            feats,
            labels: g.labels.clone(),
            train: (0..200u32).collect(),
            val: (200..300u32).collect(),
        }
    }

    fn val_acc_of(clf: &DepthClassifier, fx: &Fixture) -> f64 {
        let rows: Vec<usize> = fx.val.iter().map(|&v| v as usize).collect();
        let vf = gather_depth_feats(&fx.feats, clf.depth() + 1, &rows);
        let pred = nai_linalg::ops::argmax_rows(&clf.forward(&vf));
        let labels: Vec<u32> = fx.val.iter().map(|&v| fx.labels[v as usize]).collect();
        let all: Vec<usize> = (0..labels.len()).collect();
        nai_linalg::ops::accuracy(&pred, &labels, &all)
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            epochs: 50,
            patience: 12,
            adam: Adam::new(0.02, 0.0),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn base_training_gives_usable_teacher() {
        let fx = fixture(50);
        let mut cls = build_classifiers(
            ModelKind::Sgc,
            4,
            8,
            3,
            &[16],
            0.0,
            &mut StdRng::seed_from_u64(51),
        );
        let report = train_base(&mut cls, &fx.feats, &fx.train, &fx.labels, &fx.val, &cfg());
        assert!(
            report.best_val_acc > 0.6,
            "teacher acc {}",
            report.best_val_acc
        );
    }

    #[test]
    fn full_inception_distillation_improves_f1() {
        // Table VIII's phenomenon: f^(1) with SS+MS beats f^(1) w/o ID.
        let fx = fixture(52);
        let make = |seed: u64| {
            build_classifiers(
                ModelKind::Sgc,
                4,
                8,
                3,
                &[16],
                0.0,
                &mut StdRng::seed_from_u64(seed),
            )
        };
        // Without ID: plain CE training for every depth.
        let mut plain = make(53);
        for l in 1..=4usize {
            train_depth_classifier(
                &mut plain[l - 1],
                &fx.feats,
                &fx.train,
                &fx.labels,
                None,
                &fx.val,
                &cfg(),
            );
        }
        let acc_plain = val_acc_of(&plain[0], &fx);

        // With full Inception Distillation.
        let mut full = make(53);
        train_base(&mut full, &fx.feats, &fx.train, &fx.labels, &fx.val, &cfg());
        let dcfg = DistillConfig {
            ensemble_r: 3,
            epochs: 30,
            ..DistillConfig::default()
        };
        single_scale(
            &mut full,
            &fx.feats,
            &fx.train,
            &fx.labels,
            &fx.val,
            &cfg(),
            &dcfg,
        );
        multi_scale(
            &mut full,
            &fx.feats,
            &fx.train,
            &fx.labels,
            &fx.val,
            &dcfg,
            &Adam::new(0.005, 0.0),
            128,
            54,
        );
        let acc_full = val_acc_of(&full[0], &fx);
        assert!(
            acc_full >= acc_plain - 0.02,
            "ID should not hurt f1: plain {acc_plain} vs full {acc_full}"
        );
    }

    #[test]
    fn multi_scale_report_is_sane() {
        let fx = fixture(55);
        let mut cls = build_classifiers(
            ModelKind::Sgc,
            3,
            8,
            3,
            &[],
            0.0,
            &mut StdRng::seed_from_u64(56),
        );
        train_base(&mut cls, &fx.feats, &fx.train, &fx.labels, &fx.val, &cfg());
        let dcfg = DistillConfig {
            ensemble_r: 2,
            epochs: 10,
            ..DistillConfig::default()
        };
        let report = multi_scale(
            &mut cls,
            &fx.feats,
            &fx.train,
            &fx.labels,
            &fx.val,
            &dcfg,
            &Adam::new(0.01, 0.0),
            0,
            57,
        );
        assert_eq!(report.epochs_run, 10);
        assert!(report.best_mean_val_acc > 0.3);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "ensemble size")]
    fn oversized_ensemble_rejected() {
        let fx = fixture(58);
        let mut cls = build_classifiers(
            ModelKind::Sgc,
            3,
            8,
            3,
            &[],
            0.0,
            &mut StdRng::seed_from_u64(59),
        );
        let dcfg = DistillConfig {
            ensemble_r: 9,
            epochs: 1,
            ..DistillConfig::default()
        };
        let _ = multi_scale(
            &mut cls,
            &fx.feats,
            &fx.train,
            &fx.labels,
            &fx.val,
            &dcfg,
            &Adam::default(),
            0,
            60,
        );
    }

    #[test]
    fn single_scale_returns_one_report_per_student() {
        let fx = fixture(61);
        let mut cls = build_classifiers(
            ModelKind::Sgc,
            4,
            8,
            3,
            &[],
            0.0,
            &mut StdRng::seed_from_u64(62),
        );
        train_base(&mut cls, &fx.feats, &fx.train, &fx.labels, &fx.val, &cfg());
        let reports = single_scale(
            &mut cls,
            &fx.feats,
            &fx.train,
            &fx.labels,
            &fx.val,
            &cfg(),
            &DistillConfig::default(),
        );
        assert_eq!(reports.len(), 3);
    }
}
