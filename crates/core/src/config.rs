//! Configuration types for training and inference.

use serde::{Deserialize, Serialize};

/// Which Node-Adaptive Propagation module controls early exits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NapMode {
    /// No adaptivity: every node propagates to `t_max` ("NAI w/o NAP" in
    /// Table VII; equivalent to the vanilla base model when
    /// `t_max = k`).
    Fixed,
    /// Distance-based NAP (NAP_d): exit when `‖X^(l) − X^(∞)‖ < t_s`.
    Distance {
        /// Exit threshold `T_s` of Eq. (9).
        ts: f32,
    },
    /// Gate-based NAP (NAP_g): trained gates decide exits (Eq. 11–13).
    Gate,
    /// Upper-bound NAP (NAP_u, extension): assigns each node the Eq. (10)
    /// spectral depth bound *before* propagation starts. Depths depend only
    /// on node degree and graph-level constants, so no per-depth distance or
    /// gate evaluation is spent — the cheapest policy, at some accuracy cost
    /// relative to NAP_d/NAP_g (see the `ablation_napu` bench).
    UpperBound {
        /// Smoothness threshold `T_s` fed into the Eq. (10) bound.
        ts: f32,
    },
}

/// Inference-time knobs of Algorithm 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Minimum propagation depth `T_min` (no exits before this depth).
    pub t_min: usize,
    /// Maximum propagation depth `T_max` (everything left exits here).
    pub t_max: usize,
    /// NAP module selection.
    pub nap: NapMode,
    /// Test-batch size (the paper's default is 500).
    pub batch_size: usize,
    /// Parallelize each propagation SpMM over the frontier's rows
    /// (`nai_linalg::parallel`), honored by both the static engine and
    /// the streaming engine. Results are bit-identical either way —
    /// every output row is an independent reduction — so this purely
    /// trades threads for intra-batch latency. Off by default: batch-level
    /// parallelism (`NaiEngine::infer_parallel`) usually scales better
    /// when many batches are in flight.
    pub parallel_spmm: bool,
}

impl InferenceConfig {
    /// Speed-first distance configuration used in Table V.
    pub fn distance(ts: f32, t_min: usize, t_max: usize) -> Self {
        Self {
            t_min,
            t_max,
            nap: NapMode::Distance { ts },
            batch_size: 500,
            parallel_spmm: false,
        }
    }

    /// Gate configuration.
    pub fn gate(t_min: usize, t_max: usize) -> Self {
        Self {
            t_min,
            t_max,
            nap: NapMode::Gate,
            batch_size: 500,
            parallel_spmm: false,
        }
    }

    /// Upper-bound (NAP_u) configuration.
    pub fn upper_bound(ts: f32, t_min: usize, t_max: usize) -> Self {
        Self {
            t_min,
            t_max,
            nap: NapMode::UpperBound { ts },
            batch_size: 500,
            parallel_spmm: false,
        }
    }

    /// Fixed-depth configuration (ablation baseline).
    pub fn fixed(t_max: usize) -> Self {
        Self {
            t_min: t_max,
            t_max,
            nap: NapMode::Fixed,
            batch_size: 500,
            parallel_spmm: false,
        }
    }

    /// Returns a copy with intra-batch row-parallel SpMM switched
    /// on/off.
    pub fn with_parallel_spmm(mut self, on: bool) -> Self {
        self.parallel_spmm = on;
        self
    }

    /// Validates `1 ≤ t_min ≤ t_max ≤ k`.
    ///
    /// # Errors
    /// Returns a description of the violated constraint.
    pub fn validate(&self, k: usize) -> Result<(), String> {
        if self.t_min < 1 {
            return Err(format!("t_min must be ≥ 1, got {}", self.t_min));
        }
        if self.t_min > self.t_max {
            return Err(format!(
                "t_min ({}) must not exceed t_max ({})",
                self.t_min, self.t_max
            ));
        }
        if self.t_max > k {
            return Err(format!(
                "t_max ({}) must not exceed the trained depth k ({k})",
                self.t_max
            ));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".to_string());
        }
        Ok(())
    }
}

/// Load-shedding policy for the serving layer: the paper's
/// accuracy↔latency dial (depth budget) driven by queue pressure.
///
/// When the number of admitted-but-unanswered requests reaches
/// `trigger_fraction × queue_cap`, batches are dispatched with a
/// *degraded* [`InferenceConfig`] whose depth budget is capped at
/// `t_max_cap` — every node exits by that depth, trading accuracy for
/// drain rate instead of queueing (or rejecting) further work.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadShedPolicy {
    /// Queue-pressure trigger as a fraction of the admission bound
    /// (`0.0..=1.0`); shedding engages when
    /// `in_flight ≥ trigger_fraction × queue_cap`.
    pub trigger_fraction: f64,
    /// Depth budget under pressure (`t_max` is clamped to this).
    /// `0` disables shedding entirely.
    pub t_max_cap: usize,
}

impl Default for LoadShedPolicy {
    fn default() -> Self {
        Self {
            trigger_fraction: 0.75,
            t_max_cap: 1,
        }
    }
}

impl LoadShedPolicy {
    /// Whether the policy degrades batches at this in-flight level.
    pub fn engaged(&self, in_flight: usize, queue_cap: usize) -> bool {
        self.t_max_cap > 0 && (in_flight as f64) >= self.trigger_fraction * queue_cap as f64
    }

    /// The degraded inference configuration: `t_max` capped (and
    /// `t_min` lowered to keep the config valid). A no-op when the
    /// budget already fits under the cap or shedding is disabled.
    pub fn degrade(&self, cfg: &InferenceConfig) -> InferenceConfig {
        if self.t_max_cap == 0 || cfg.t_max <= self.t_max_cap {
            return *cfg;
        }
        let t_max = self.t_max_cap;
        InferenceConfig {
            t_min: cfg.t_min.min(t_max),
            t_max,
            ..*cfg
        }
    }
}

/// Sequence-versioned prediction cache for the serving layer.
///
/// The service remembers `(prediction, depth)` per node, stamped with
/// the mutation sequence number it was computed under, and answers
/// repeat reads without touching an engine replica. Every sequenced
/// mutation invalidates the entries its k-hop neighborhood could have
/// changed (see `nai-serve`'s `PredictionCache`); when the dirtied
/// frontier would exceed `frontier_budget` visited nodes — or the NAP
/// mode depends on global (stationary) state, where no local frontier
/// is sound — the whole cache is conservatively flushed instead.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Whether reads consult the cache at all.
    pub enabled: bool,
    /// Maximum cached nodes; least-recently-used entries are evicted
    /// beyond this.
    pub cap: usize,
    /// Invalidation-walk budget: if the BFS from a mutation's touched
    /// nodes visits more than this many nodes, fall back to a full
    /// flush (`0` = always flush).
    pub frontier_budget: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl CacheConfig {
    /// Caching disabled (the default: every read hits an engine).
    pub fn off() -> Self {
        Self {
            enabled: false,
            cap: 4096,
            frontier_budget: 512,
        }
    }

    /// Caching enabled with the given capacity and default walk budget.
    pub fn on(cap: usize) -> Self {
        Self {
            enabled: true,
            cap,
            ..Self::off()
        }
    }
}

/// Serving-layer knobs for `nai-serve`: dynamic micro-batching,
/// admission control, and sharding over engine replicas.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Worker count — engine shards, each owning one replica and its
    /// amortized scratch.
    pub workers: usize,
    /// A forming batch is dispatched as soon as it holds this many
    /// requests (the Fig. 5 batch-size dial at the service level).
    pub max_batch: usize,
    /// ... or as soon as its oldest request has waited this long.
    pub max_wait: std::time::Duration,
    /// Admission bound: maximum requests in flight (queued or being
    /// served); submissions beyond it are rejected as `Overloaded`.
    pub queue_cap: usize,
    /// Accuracy↔latency dial under queue pressure.
    pub shed: LoadShedPolicy,
    /// Sequence-versioned prediction cache (off by default).
    pub cache: CacheConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 64,
            max_wait: std::time::Duration::from_millis(2),
            queue_cap: 1024,
            shed: LoadShedPolicy::default(),
            cache: CacheConfig::off(),
        }
    }
}

impl ServeConfig {
    /// Validates worker/batch/queue bounds and the shed trigger.
    ///
    /// # Errors
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be ≥ 1".to_string());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be ≥ 1".to_string());
        }
        if self.queue_cap == 0 {
            return Err("queue_cap must be ≥ 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.shed.trigger_fraction) {
            return Err(format!(
                "shed.trigger_fraction must be in [0, 1], got {}",
                self.shed.trigger_fraction
            ));
        }
        if self.cache.enabled && self.cache.cap == 0 {
            return Err("cache.cap must be ≥ 1 when the cache is enabled".to_string());
        }
        Ok(())
    }
}

/// Inception Distillation hyper-parameters (Tables III–IV of the paper).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Single-scale temperature `T_single`.
    pub t_single: f32,
    /// Single-scale mixing weight `λ_single`.
    pub lambda_single: f32,
    /// Multi-scale temperature `T_multi`.
    pub t_multi: f32,
    /// Multi-scale mixing weight `λ_multi`.
    pub lambda_multi: f32,
    /// Ensemble size `r` (number of top-depth classifiers voting).
    pub ensemble_r: usize,
    /// Multi-scale training epochs.
    pub epochs: usize,
}

impl Default for DistillConfig {
    fn default() -> Self {
        Self {
            t_single: 1.2,
            lambda_single: 0.5,
            t_multi: 1.8,
            lambda_multi: 0.8,
            ensemble_r: 3,
            epochs: 60,
        }
    }
}

/// End-to-end training configuration for the NAI pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Highest propagation depth `k` (one classifier per depth `1..=k`).
    pub k: usize,
    /// Hidden widths of every classifier MLP.
    pub hidden: Vec<usize>,
    /// Classifier dropout.
    pub dropout: f32,
    /// Learning rate.
    pub lr: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Epoch budget for base/single-scale training.
    pub epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Mini-batch size for classifier training (0 = full batch).
    pub train_batch: usize,
    /// Distillation settings.
    pub distill: DistillConfig,
    /// Whether Inception Distillation runs at all (ablations switch the
    /// stages off).
    pub use_single_scale: bool,
    /// Whether Multi-Scale Distillation runs.
    pub use_multi_scale: bool,
    /// Gate training epochs (gate-based NAP).
    pub gate_epochs: usize,
    /// Gumbel-softmax temperature for gate training.
    pub gate_tau: f32,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            k: 5,
            hidden: vec![64],
            dropout: 0.1,
            lr: 0.01,
            weight_decay: 0.0,
            epochs: 100,
            patience: 20,
            train_batch: 0,
            distill: DistillConfig::default(),
            use_single_scale: true,
            use_multi_scale: true,
            gate_epochs: 40,
            gate_tau: 1.0,
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_accepts_sane_configs() {
        assert!(InferenceConfig::distance(0.1, 1, 5).validate(5).is_ok());
        assert!(InferenceConfig::fixed(3).validate(5).is_ok());
        assert!(InferenceConfig::gate(2, 4).validate(5).is_ok());
    }

    #[test]
    fn validation_rejects_bad_bounds() {
        assert!(InferenceConfig::distance(0.1, 0, 5).validate(5).is_err());
        assert!(InferenceConfig::distance(0.1, 4, 3).validate(5).is_err());
        assert!(InferenceConfig::distance(0.1, 1, 9).validate(5).is_err());
        let mut c = InferenceConfig::fixed(2);
        c.batch_size = 0;
        assert!(c.validate(5).is_err());
    }

    #[test]
    fn fixed_mode_pins_tmin_to_tmax() {
        let c = InferenceConfig::fixed(4);
        assert_eq!(c.t_min, 4);
        assert_eq!(c.t_max, 4);
        assert_eq!(c.nap, NapMode::Fixed);
    }

    #[test]
    fn serve_config_validation() {
        assert!(ServeConfig::default().validate().is_ok());
        for broken in [
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_cap: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                shed: LoadShedPolicy {
                    trigger_fraction: 1.5,
                    t_max_cap: 1,
                },
                ..ServeConfig::default()
            },
            ServeConfig {
                cache: CacheConfig {
                    enabled: true,
                    cap: 0,
                    frontier_budget: 512,
                },
                ..ServeConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
        }
    }

    #[test]
    fn cache_config_defaults_and_constructors() {
        let off = CacheConfig::default();
        assert!(!off.enabled);
        let on = CacheConfig::on(64);
        assert!(on.enabled);
        assert_eq!(on.cap, 64);
        assert_eq!(on.frontier_budget, off.frontier_budget);
        // A zero cap is fine while disabled, rejected once enabled.
        assert!(ServeConfig {
            cache: CacheConfig {
                enabled: false,
                cap: 0,
                frontier_budget: 0,
            },
            ..ServeConfig::default()
        }
        .validate()
        .is_ok());
        assert!(ServeConfig {
            cache: CacheConfig::on(1),
            ..ServeConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn load_shed_engages_at_trigger_fraction() {
        let shed = LoadShedPolicy {
            trigger_fraction: 0.5,
            t_max_cap: 1,
        };
        assert!(!shed.engaged(4, 10));
        assert!(shed.engaged(5, 10));
        assert!(shed.engaged(10, 10));
        // t_max_cap = 0 disables shedding regardless of pressure.
        let off = LoadShedPolicy {
            trigger_fraction: 0.0,
            t_max_cap: 0,
        };
        assert!(!off.engaged(10, 10));
    }

    #[test]
    fn degrade_caps_depth_budget_and_stays_valid() {
        let shed = LoadShedPolicy {
            trigger_fraction: 0.75,
            t_max_cap: 2,
        };
        let deep = InferenceConfig::distance(0.5, 1, 5);
        let capped = shed.degrade(&deep);
        assert_eq!(capped.t_max, 2);
        assert_eq!(capped.t_min, 1);
        assert!(capped.validate(5).is_ok());
        // Fixed mode (t_min == t_max) stays valid after capping.
        let fixed = shed.degrade(&InferenceConfig::fixed(4));
        assert_eq!((fixed.t_min, fixed.t_max), (2, 2));
        assert!(fixed.validate(5).is_ok());
        // Already under the cap → unchanged.
        let shallow = InferenceConfig::distance(0.5, 1, 2);
        assert_eq!(shed.degrade(&shallow).t_max, 2);
        // Disabled policy is the identity.
        let off = LoadShedPolicy {
            trigger_fraction: 0.75,
            t_max_cap: 0,
        };
        assert_eq!(off.degrade(&deep).t_max, 5);
    }
}
