//! The personalized-depth upper bound of Eq. (10).
//!
//! `L(v_i, T_s) ≤ min{ log_{λ₂}(T_s · sqrt((d_i+1)/(2m+n))),
//!                     max{L(v_j), v_j ∈ N(v_i)} + 1 }`
//!
//! The first term says depth falls with node degree and rises with graph
//! size/sparsity; the second says neighboring depths differ by at most one.
//! We expose both terms so tests (and the complexity bench) can verify the
//! structural properties the paper derives from them.

use nai_graph::CsrMatrix;

/// The spectral term of Eq. (10): `log_{λ₂}(T_s · sqrt((d_i+1)/(2m+n)))`.
///
/// Returns `None` when the bound is vacuous (argument of the log ≥ 1, i.e.
/// the node is already within `T_s` at depth 0, or λ₂ ≥ 1 making the log
/// undefined as a finite bound).
pub fn spectral_bound(ts: f32, degree: f32, total_tilde_degree: f64, lambda2: f32) -> Option<f32> {
    if !(0.0..1.0).contains(&lambda2) || ts <= 0.0 {
        return None;
    }
    let arg = ts * ((degree as f64 + 1.0) / total_tilde_degree.max(1.0)).sqrt() as f32;
    if arg >= 1.0 {
        return Some(0.0);
    }
    // log_base(x) with 0 < base < 1 and 0 < x < 1 is positive.
    Some(arg.ln() / lambda2.ln())
}

/// Assigns every node in `nodes` its Eq. (10) spectral depth, clamped to
/// `[t_min, t_max]` — the NAP_u policy.
///
/// Unlike NAP_d/NAP_g this needs **no propagated features**: depth is a
/// pure function of the node degree and graph constants (λ₂, `2m+n`), so
/// it can run before propagation starts. Nodes whose bound is vacuous
/// (`None` from [`spectral_bound`]) conservatively receive `t_max`.
///
/// # Panics
/// Panics if any node id is out of range or `t_min > t_max`.
pub fn assign_depths(
    adj: &CsrMatrix,
    nodes: &[u32],
    ts: f32,
    lambda2: f32,
    total_tilde_degree: f64,
    t_min: usize,
    t_max: usize,
) -> Vec<usize> {
    assert!(t_min <= t_max, "t_min must not exceed t_max");
    nodes
        .iter()
        .map(|&v| {
            let degree = adj.row_nnz(v as usize) as f32;
            match spectral_bound(ts, degree, total_tilde_degree, lambda2) {
                Some(b) => (b.ceil() as usize).clamp(t_min, t_max),
                None => t_max,
            }
        })
        .collect()
}

/// Verifies the neighbor-Lipschitz property (second term of Eq. 10):
/// adjacent nodes' personalized depths differ by at most one. Returns the
/// violating pair if any.
pub fn check_neighbor_lipschitz(adj: &CsrMatrix, depths: &[usize]) -> Option<(u32, u32)> {
    for i in 0..adj.n() {
        for (j, _) in adj.row_iter(i) {
            let a = depths[i];
            let b = depths[j as usize];
            if a > b + 1 || b > a + 1 {
                return Some((i as u32, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::napd::personalized_depth;
    use crate::stationary::StationaryState;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::{normalized_adjacency, Convolution};
    use nai_models::propagate_features;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spectral_bound_decreases_with_degree() {
        let b_low = spectral_bound(0.1, 2.0, 1000.0, 0.8).unwrap();
        let b_high = spectral_bound(0.1, 200.0, 1000.0, 0.8).unwrap();
        assert!(b_high < b_low, "high-degree bound {b_high} vs {b_low}");
    }

    #[test]
    fn spectral_bound_increases_with_graph_size() {
        let small = spectral_bound(0.1, 5.0, 100.0, 0.8).unwrap();
        let large = spectral_bound(0.1, 5.0, 100_000.0, 0.8).unwrap();
        assert!(large > small);
    }

    #[test]
    fn spectral_bound_tightens_with_small_lambda2() {
        // Strong connectivity (small λ₂) → faster smoothing → lower depth.
        let tight = spectral_bound(0.1, 5.0, 1000.0, 0.3).unwrap();
        let loose = spectral_bound(0.1, 5.0, 1000.0, 0.95).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn vacuous_cases_return_none_or_zero() {
        assert!(spectral_bound(0.1, 5.0, 1000.0, 1.0).is_none());
        assert!(spectral_bound(0.0, 5.0, 1000.0, 0.5).is_none());
        assert_eq!(spectral_bound(100.0, 5.0, 10.0, 0.5), Some(0.0));
    }

    #[test]
    fn assign_depths_clamps_and_orders_by_degree() {
        // Star graph: hub has degree 5, leaves degree 1.
        let adj = nai_graph::CsrMatrix::undirected_adjacency(
            6,
            &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)],
        )
        .unwrap();
        let nodes: Vec<u32> = (0..6).collect();
        let depths = assign_depths(&adj, &nodes, 0.3, 0.8, 16.0, 1, 6);
        assert!(depths.iter().all(|&d| (1..=6).contains(&d)));
        // Hub (node 0) must exit no later than any leaf.
        assert!(depths[1..].iter().all(|&leaf| depths[0] <= leaf));
    }

    #[test]
    fn assign_depths_vacuous_bound_falls_back_to_tmax() {
        let adj = nai_graph::CsrMatrix::undirected_adjacency(2, &[(0, 1)]).unwrap();
        // λ₂ = 1 ⇒ bound undefined ⇒ t_max.
        let depths = assign_depths(&adj, &[0, 1], 0.3, 1.0, 4.0, 2, 5);
        assert_eq!(depths, vec![5, 5]);
        // ts huge ⇒ arg ≥ 1 ⇒ bound 0 ⇒ clamped up to t_min.
        let eager = assign_depths(&adj, &[0, 1], 100.0, 0.8, 4.0, 2, 5);
        assert_eq!(eager, vec![2, 2]);
    }

    #[test]
    fn lipschitz_checker_finds_violations() {
        let adj = nai_graph::CsrMatrix::undirected_adjacency(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(check_neighbor_lipschitz(&adj, &[1, 2, 3]).is_none());
        assert_eq!(check_neighbor_lipschitz(&adj, &[1, 3, 3]), Some((0, 1)));
    }

    #[test]
    fn spectral_bound_orders_realized_depths() {
        // The Eq. (10) spectral term predicts that nodes with a smaller
        // bound (high degree) exit no later, on average, than nodes with a
        // larger bound (low degree). Verify the ordering empirically with
        // the row-stochastic operator, choosing T_s adaptively so realized
        // depths actually spread across [1, k].
        let g = generate(
            &GeneratorConfig {
                num_nodes: 400,
                avg_degree: 10.0,
                power_law_exponent: 2.2,
                homophily: 0.9,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(4),
        );
        let norm = normalized_adjacency(&g.adj, Convolution::ReverseTransition);
        let k = 8;
        let feats = propagate_features(&norm, &g.features, k);
        let st = StationaryState::compute(&g.adj, &g.features, 0.0);
        let xinf = st.full();
        let lambda2 = norm.lambda2_estimate(150, 9).min(0.999);
        let total = g.total_tilde_degree();
        let degrees = g.adj.degrees();
        // Adaptive threshold: median distance at depth k/2 spreads exits.
        let mut mid: Vec<f32> = (0..g.num_nodes())
            .map(|i| nai_linalg::ops::l2_distance(feats[k / 2].row(i), xinf.row(i)))
            .collect();
        mid.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ts = mid[mid.len() / 2];

        // Split nodes by the spectral bound's median and compare mean
        // realized depths.
        let mut entries: Vec<(f32, usize)> = Vec::new();
        for (node, &degree) in degrees.iter().enumerate() {
            let levels: Vec<&[f32]> = feats.iter().map(|m| m.row(node)).collect();
            let depth = personalized_depth(&levels, xinf.row(node), ts);
            if let Some(bound) = spectral_bound(ts, degree, total, lambda2) {
                entries.push((bound, depth));
            }
        }
        assert!(entries.len() > 100, "need informative nodes");
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let half = entries.len() / 2;
        let small_bound: f64 =
            entries[..half].iter().map(|&(_, d)| d as f64).sum::<f64>() / half as f64;
        let large_bound: f64 = entries[half..].iter().map(|&(_, d)| d as f64).sum::<f64>()
            / (entries.len() - half) as f64;
        assert!(
            small_bound <= large_bound + 0.25,
            "small-bound nodes exit at {small_bound:.2}, large-bound at {large_bound:.2}"
        );
    }
}
