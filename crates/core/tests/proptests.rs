//! Property-based tests for the NAI core invariants.

use nai_core::napd;
use nai_core::stationary::StationaryState;
use nai_graph::csr::CsrMatrix;
use nai_graph::normalize::{normalized_adjacency, Convolution};
use nai_linalg::DenseMatrix;
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = (CsrMatrix, DenseMatrix)> {
    (3usize..30).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 1..n * 2);
        let feats = proptest::collection::vec(-5.0f32..5.0, n * 4);
        (Just(n), edges, feats).prop_map(|(n, edges, feats)| {
            let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
            let x = DenseMatrix::from_vec(n, 4, feats);
            (adj, x)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `X^(∞)` is a fixed point of propagation for every γ operating point.
    #[test]
    fn stationary_is_fixed_point((adj, x) in random_graph()) {
        for (gamma, conv) in [
            (0.5f32, Convolution::Symmetric),
            (0.0, Convolution::ReverseTransition),
            (1.0, Convolution::Transition),
        ] {
            let st = StationaryState::compute(&adj, &x, gamma);
            let xinf = st.full();
            let norm = normalized_adjacency(&adj, conv);
            let once = norm.spmm(&xinf);
            let scale = xinf.max_abs().max(1.0);
            for (a, b) in once.as_slice().iter().zip(xinf.as_slice()) {
                prop_assert!(
                    (a - b).abs() / scale < 1e-3,
                    "gamma {}: {} vs {}", gamma, a, b
                );
            }
        }
    }

    /// Distances to the stationary state contract (weakly) over long
    /// horizons: depth 2k is no farther than depth 1 on average.
    #[test]
    fn distances_contract_on_average((adj, x) in random_graph()) {
        let norm = normalized_adjacency(&adj, Convolution::Symmetric);
        let st = StationaryState::compute(&adj, &x, 0.5);
        let xinf = st.full();
        let mut h = norm.spmm(&x);
        let early: f32 = napd::distances(&h, &xinf).iter().sum();
        for _ in 0..7 {
            h = norm.spmm(&h);
        }
        let late: f32 = napd::distances(&h, &xinf).iter().sum();
        prop_assert!(late <= early + 1e-3, "early {} late {}", early, late);
    }

    /// Personalized depth is monotone non-increasing in `T_s`.
    #[test]
    fn personalized_depth_monotone_in_threshold((adj, x) in random_graph()) {
        let norm = normalized_adjacency(&adj, Convolution::Symmetric);
        let st = StationaryState::compute(&adj, &x, 0.5);
        let xinf = st.full();
        let mut levels = vec![x.clone()];
        for _ in 0..5 {
            levels.push(norm.spmm(levels.last().unwrap()));
        }
        for node in 0..adj.n().min(5) {
            let rows: Vec<&[f32]> = levels.iter().map(|m| m.row(node)).collect();
            let mut last_depth = usize::MAX;
            for ts in [0.01f32, 0.1, 1.0, 10.0, 100.0] {
                let d = napd::personalized_depth(&rows, xinf.row(node), ts);
                prop_assert!(d <= last_depth, "depth grew with larger ts");
                last_depth = d;
            }
        }
    }

    /// Exit masks respect the threshold semantics exactly.
    #[test]
    fn exit_mask_matches_distances(
        cur in proptest::collection::vec(-3.0f32..3.0, 12),
        stat in proptest::collection::vec(-3.0f32..3.0, 12),
        ts in 0.0f32..10.0,
    ) {
        let cur = DenseMatrix::from_vec(3, 4, cur);
        let stat = DenseMatrix::from_vec(3, 4, stat);
        let d = napd::distances(&cur, &stat);
        let m = napd::exit_mask(&cur, &stat, ts);
        for (dist, exit) in d.iter().zip(m.iter()) {
            prop_assert_eq!(*exit, *dist < ts);
        }
    }
}
