//! Regression: the active-set rewrite of `NaiEngine::infer_batch` must be
//! **byte-identical** with the pre-refactor Algorithm 1 loop.
//!
//! `reference_infer` below is the engine's previous implementation
//! (per-depth `HashMap` position lookups, full-history `gather_rows`
//! compaction on every exit round, from-scratch BFS after exits),
//! re-expressed over public APIs. For every NAP mode and a sweep of odd
//! batch sizes, the engine must reproduce its `predictions`, `depths`,
//! per-stage MACs, and exit histogram exactly.

use nai_core::config::{InferenceConfig, NapMode};
use nai_core::gates::{GateSet, GateTrainConfig};
use nai_core::inference::NaiEngine;
use nai_core::stationary::StationaryState;
use nai_core::{napd, upper_bound};
use nai_graph::frontier::BfsScratch;
use nai_graph::generators::{generate, GeneratorConfig};
use nai_graph::normalize::normalized_adjacency;
use nai_graph::{Convolution, Graph};
use nai_linalg::ops::argmax_rows;
use nai_linalg::DenseMatrix;
use nai_models::train::train_depth_classifier;
use nai_models::{propagate_features, DepthClassifier, ModelKind};
use nai_nn::adam::Adam;
use nai_nn::trainer::TrainConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const K: usize = 3;

fn engine() -> (NaiEngine, Graph, Vec<u32>) {
    let g = generate(
        &GeneratorConfig {
            num_nodes: 260,
            num_classes: 3,
            feature_dim: 8,
            avg_degree: 7.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(2024),
    );
    let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
    let feats = propagate_features(&norm, &g.features, K);
    let st = StationaryState::compute(&g.adj, &g.features, 0.5);
    let train: Vec<u32> = (0..180u32).collect();
    let val: Vec<u32> = (180..220u32).collect();
    let test: Vec<u32> = (220..260u32).collect();
    let mut classifiers = Vec::new();
    for l in 1..=K {
        let mut rng = StdRng::seed_from_u64(300 + l as u64);
        let mut clf = DepthClassifier::new(ModelKind::Sgc, l, 8, 3, &[16], 0.0, &mut rng);
        train_depth_classifier(
            &mut clf,
            &feats,
            &train,
            &g.labels,
            None,
            &val,
            &TrainConfig {
                epochs: 30,
                patience: 8,
                adam: Adam::new(0.02, 0.0),
                ..TrainConfig::default()
            },
        );
        classifiers.push(clf);
    }
    let mut gates = GateSet::new(8, K, &mut StdRng::seed_from_u64(77));
    gates.train(
        &feats,
        &st.full(),
        &classifiers,
        &train,
        &g.labels,
        &GateTrainConfig {
            epochs: 6,
            ..GateTrainConfig::default()
        },
    );
    let engine = NaiEngine::new(&g, norm, st, classifiers, Some(gates));
    (engine, g, test)
}

/// Per-stage MAC counters of the legacy loop (mirrors `MacsBreakdown`).
#[derive(Default, Debug, PartialEq, Eq)]
struct RefMacs {
    propagation: u64,
    stationary: u64,
    nap: u64,
    classification: u64,
}

struct RefOut {
    predictions: Vec<usize>,
    depths: Vec<usize>,
    histogram: Vec<usize>,
    macs: RefMacs,
}

/// The pre-refactor `infer_with_heads`, verbatim in structure: HashMap
/// row location, full-history compaction on exits, BFS recomputation of
/// the remaining hop sets.
fn reference_infer(
    engine: &NaiEngine,
    g: &Graph,
    test_nodes: &[u32],
    cfg: &InferenceConfig,
) -> RefOut {
    let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
    let st = StationaryState::compute(&g.adj, &g.features, 0.5);
    let f = g.features.cols();
    let n = g.adj.n();
    let mut macs = RefMacs {
        stationary: st.precompute_macs(),
        ..RefMacs::default()
    };
    let mut predictions = vec![usize::MAX; test_nodes.len()];
    let mut depths = vec![0usize; test_nodes.len()];
    let mut histogram = vec![0usize; cfg.t_max];
    let mut bfs = BfsScratch::new(n);
    let mut col_map = vec![u32::MAX; n];

    for batch_start in (0..test_nodes.len()).step_by(cfg.batch_size) {
        let batch = &test_nodes[batch_start..(batch_start + cfg.batch_size).min(test_nodes.len())];
        let mut x_inf_active = st.rows(batch);
        macs.stationary += batch.len() as u64 * st.macs_per_row();
        let mut assigned: Vec<usize> = match cfg.nap {
            NapMode::UpperBound { ts } => {
                macs.nap += batch.len() as u64 * 4;
                upper_bound::assign_depths(
                    &g.adj,
                    batch,
                    ts,
                    engine.lambda2(),
                    engine.total_tilde_degree(),
                    cfg.t_min,
                    cfg.t_max,
                )
            }
            _ => Vec::new(),
        };
        let mut sets = bfs.hop_sets(&g.adj, batch, cfg.t_max);
        let mut active_pos: Vec<usize> = (0..batch.len()).collect();
        let mut active_nodes: Vec<u32> = batch.to_vec();
        let batch_idx: Vec<usize> = batch.iter().map(|&v| v as usize).collect();
        let mut history: Vec<DenseMatrix> = vec![g.features.gather_rows(&batch_idx).unwrap()];
        let mut support_prev: Vec<u32> = sets[0].clone();
        let mut h_prev = {
            let idx: Vec<usize> = support_prev.iter().map(|&v| v as usize).collect();
            g.features.gather_rows(&idx).unwrap()
        };

        'depth: for l in 1..=cfg.t_max {
            let support_l = std::mem::take(&mut sets[l]);
            for (t, &gn) in support_prev.iter().enumerate() {
                col_map[gn as usize] = t as u32;
            }
            let (h_l, step_macs) = norm.spmm_gather(&support_l, &col_map, &h_prev);
            for &gn in support_prev.iter() {
                col_map[gn as usize] = u32::MAX;
            }
            macs.propagation += step_macs;

            let mut pos_in_support = HashMap::with_capacity(active_nodes.len());
            for (t, &gn) in support_l.iter().enumerate() {
                pos_in_support.insert(gn, t);
            }
            let active_rows: Vec<usize> = active_nodes
                .iter()
                .map(|gn| *pos_in_support.get(gn).unwrap())
                .collect();
            history.push(h_l.gather_rows(&active_rows).unwrap());

            let at_final = l == cfg.t_max;
            let mut exit_mask: Vec<bool> = vec![at_final; active_nodes.len()];
            if !at_final && l >= cfg.t_min {
                match cfg.nap {
                    NapMode::Fixed => {}
                    NapMode::Distance { ts } => {
                        exit_mask = napd::exit_mask(&history[l], &x_inf_active, ts);
                        macs.nap += active_nodes.len() as u64 * napd::macs_per_node(f);
                    }
                    NapMode::Gate => {
                        let gates = engine.gates().unwrap();
                        if l < gates.k() {
                            exit_mask = gates.decide(l, &history[l], &x_inf_active);
                            macs.nap += active_nodes.len() as u64 * gates.macs_per_node();
                        }
                    }
                    NapMode::UpperBound { .. } => {
                        for (e, &d) in exit_mask.iter_mut().zip(assigned.iter()) {
                            *e = d == l;
                        }
                    }
                }
            }

            if exit_mask.iter().any(|&e| e) {
                let exit_rows: Vec<usize> = exit_mask
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &e)| e.then_some(i))
                    .collect();
                let exit_feats: Vec<DenseMatrix> = history[..=l]
                    .iter()
                    .map(|m| m.gather_rows(&exit_rows).unwrap())
                    .collect();
                let logits = engine.classifier(l).forward(&exit_feats);
                macs.classification +=
                    exit_rows.len() as u64 * engine.classifier(l).macs_per_node();
                let preds = argmax_rows(&logits);
                for (t, &row) in exit_rows.iter().enumerate() {
                    let orig = active_pos[row];
                    predictions[batch_start + orig] = preds[t];
                    depths[batch_start + orig] = l;
                    histogram[l - 1] += 1;
                }
                let keep_rows: Vec<usize> = exit_mask
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &e)| (!e).then_some(i))
                    .collect();
                if keep_rows.is_empty() {
                    break 'depth;
                }
                active_pos = keep_rows.iter().map(|&i| active_pos[i]).collect();
                active_nodes = keep_rows.iter().map(|&i| active_nodes[i]).collect();
                if !assigned.is_empty() {
                    assigned = keep_rows.iter().map(|&i| assigned[i]).collect();
                }
                x_inf_active = x_inf_active.gather_rows(&keep_rows).unwrap();
                for m in history.iter_mut() {
                    *m = m.gather_rows(&keep_rows).unwrap();
                }
                if l < cfg.t_max {
                    let new_sets = bfs.hop_sets(&g.adj, &active_nodes, cfg.t_max - l);
                    for (j, ns) in new_sets.into_iter().enumerate() {
                        if j >= 1 {
                            sets[l + j] = ns;
                        }
                    }
                }
            }

            support_prev = support_l;
            h_prev = h_l;
        }
    }
    RefOut {
        predictions,
        depths,
        histogram,
        macs,
    }
}

#[test]
fn active_set_engine_is_byte_identical_with_legacy_loop() {
    let (engine, g, test) = engine();
    let modes = [
        NapMode::Fixed,
        NapMode::Distance { ts: 1.0 },
        NapMode::Distance { ts: 0.25 },
        NapMode::Gate,
        NapMode::UpperBound { ts: 0.5 },
    ];
    for nap in modes {
        for batch_size in [1usize, 3, 7, 13, 40, 500] {
            let cfg = InferenceConfig {
                t_min: if matches!(nap, NapMode::Fixed) { K } else { 1 },
                t_max: K,
                nap,
                batch_size,
                parallel_spmm: false,
            };
            let got = engine.infer(&test, &g.labels, &cfg);
            let want = reference_infer(&engine, &g, &test, &cfg);
            let tag = format!("{nap:?} batch {batch_size}");
            assert_eq!(got.predictions, want.predictions, "predictions: {tag}");
            assert_eq!(got.depths, want.depths, "depths: {tag}");
            assert_eq!(
                got.report.depth_histogram, want.histogram,
                "histogram: {tag}"
            );
            assert_eq!(
                got.report.macs.propagation, want.macs.propagation,
                "propagation MACs: {tag}"
            );
            assert_eq!(
                got.report.macs.stationary, want.macs.stationary,
                "stationary MACs: {tag}"
            );
            assert_eq!(got.report.macs.nap, want.macs.nap, "NAP MACs: {tag}");
            assert_eq!(
                got.report.macs.classification, want.macs.classification,
                "classification MACs: {tag}"
            );
        }
    }
}

#[test]
fn parallel_spmm_knob_is_bit_identical() {
    let (engine, g, test) = engine();
    for nap in [NapMode::Fixed, NapMode::Distance { ts: 1.0 }] {
        let serial = InferenceConfig {
            t_min: if matches!(nap, NapMode::Fixed) { K } else { 1 },
            t_max: K,
            nap,
            batch_size: 13,
            parallel_spmm: false,
        };
        let parallel = serial.with_parallel_spmm(true);
        let a = engine.infer(&test, &g.labels, &serial);
        let b = engine.infer(&test, &g.labels, &parallel);
        assert_eq!(a.predictions, b.predictions, "{nap:?}");
        assert_eq!(a.depths, b.depths, "{nap:?}");
        assert_eq!(a.report.macs.total(), b.report.macs.total(), "{nap:?}");
        assert_eq!(a.report.depth_histogram, b.report.depth_histogram);
    }
}

#[test]
fn propagate_only_with_shares_one_scratch_across_batches() {
    let (engine, g, test) = engine();
    let mut scratch = nai_core::active::EngineScratch::new();
    let (once, macs_once, _) = engine.propagate_only(&test, 2);
    let mut macs_chunks = 0u64;
    let mut rows = 0usize;
    for chunk in test.chunks(7) {
        let (hist, m, _) = engine.propagate_only_with(chunk, 2, &mut scratch);
        assert_eq!(hist.len(), 3);
        // Chunked histories reproduce the whole-batch rows exactly.
        for (lvl, whole) in hist.iter().zip(once.iter()) {
            for r in 0..chunk.len() {
                assert_eq!(lvl.row(r), whole.row(rows + r), "level rows");
            }
        }
        rows += chunk.len();
        macs_chunks += m.propagation;
        assert_eq!(m.stationary, 0, "propagate-only must not charge stationary");
        assert_eq!(m.classification, 0);
    }
    assert_eq!(rows, test.len());
    // Chunked frontiers overlap, so chunked propagation can only cost
    // more MACs than one batch — never fewer.
    assert!(macs_chunks >= macs_once.propagation);
    let _ = g;
}
