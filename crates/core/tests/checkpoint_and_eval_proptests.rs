//! Property tests for checkpoint serialization and evaluation metrics.

use nai_core::checkpoint::ModelCheckpoint;
use nai_core::eval::{expected_calibration_error, ConfusionMatrix};
use nai_core::gates::GateSet;
use nai_core::inference::NaiEngine;
use nai_core::stationary::StationaryState;
use nai_graph::generators::{generate, GeneratorConfig};
use nai_graph::{normalized_adjacency, Convolution};
use nai_linalg::DenseMatrix;
use nai_models::{DepthClassifier, ModelKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kind_strategy() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::Sgc),
        Just(ModelKind::Sign),
        Just(ModelKind::S2gc),
        Just(ModelKind::Gamlp),
    ]
}

/// Builds an untrained engine with an arbitrary architecture — checkpoints
/// must roundtrip regardless of training state.
fn engine_of(
    kind: ModelKind,
    k: usize,
    f: usize,
    c: usize,
    hidden: &[usize],
    gates: bool,
    seed: u64,
) -> NaiEngine {
    let g = generate(
        &GeneratorConfig {
            num_nodes: 60,
            num_classes: c,
            feature_dim: f,
            avg_degree: 4.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(seed),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let classifiers: Vec<DepthClassifier> = (1..=k)
        .map(|l| DepthClassifier::new(kind, l, f, c, hidden, 0.0, &mut rng))
        .collect();
    let gate_set = (gates && k >= 2).then(|| GateSet::new(f, k, &mut rng));
    let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
    let st = StationaryState::compute(&g.adj, &g.features, 0.5);
    NaiEngine::new(&g, norm, st, classifiers, gate_set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoints roundtrip bit-exactly through bytes for every base
    /// model, depth, width, and gate configuration.
    #[test]
    fn checkpoint_roundtrips_any_architecture(
        kind in kind_strategy(),
        k in 1usize..4,
        f in 2usize..8,
        c in 2usize..5,
        hidden in proptest::collection::vec(2usize..12, 0..3),
        gates in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let engine = engine_of(kind, k, f, c, &hidden, gates, seed);
        let ckpt = ModelCheckpoint::from_engine(&engine, 0.5);
        let bytes = ckpt.encode();
        let back = ModelCheckpoint::decode(&bytes).expect("roundtrip");
        prop_assert_eq!(back.kind, kind);
        prop_assert_eq!(back.k, k);
        prop_assert_eq!(back.feature_dim, f);
        prop_assert_eq!(back.num_classes, c);
        prop_assert_eq!(&back.hidden, &hidden);
        prop_assert_eq!(back.has_gates(), gates && k >= 2);
        // Rebuilt classifiers must agree with the originals on logits for
        // random inputs (weights restored exactly).
        let rebuilt = back.build_classifiers();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        for (orig, new) in engine.classifiers().iter().zip(&rebuilt) {
            let depth = orig.depth();
            let feats: Vec<DenseMatrix> = (0..=depth)
                .map(|_| DenseMatrix::from_fn(3, f, |_, _| {
                    use rand::Rng;
                    rng.gen_range(-1.0f32..1.0)
                }))
                .collect();
            let a = orig.forward(&feats);
            let b = new.forward(&feats);
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
        // Re-encoding the decoded checkpoint is byte-identical.
        let reencoded = back.encode();
        prop_assert_eq!(bytes.as_ref(), reencoded.as_ref());
    }

    /// Single-bit corruption anywhere in the payload is either detected
    /// as a decode error or produces a *structurally valid* checkpoint —
    /// never a panic.
    #[test]
    fn checkpoint_decode_never_panics_on_bitflips(
        seed in any::<u64>(),
        byte_pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let engine = engine_of(ModelKind::Sgc, 2, 4, 3, &[6], true, seed);
        let mut bytes = ModelCheckpoint::from_engine(&engine, 0.5).encode().to_vec();
        let pos = byte_pos.index(bytes.len());
        bytes[pos] ^= 1 << bit;
        // Must return (Ok or Err), not panic; a surviving Ok implies the
        // flip hit a weight byte, and the model must still rebuild.
        if let Ok(ckpt) = ModelCheckpoint::decode(&bytes) {
            let _ = ckpt.build_classifiers();
            let _ = ckpt.build_gates();
        }
    }

    /// Confusion-matrix identities on random prediction/label pairs:
    /// micro-F1 = accuracy (single-label), per-class support sums to the
    /// total, and macro-F1 ∈ [0, 1].
    #[test]
    fn confusion_matrix_identities(
        pairs in proptest::collection::vec((0usize..5, 0u32..5), 1..200),
    ) {
        let preds: Vec<usize> = pairs.iter().map(|&(p, _)| p).collect();
        let labels: Vec<u32> = pairs.iter().map(|&(_, y)| y).collect();
        let m = ConfusionMatrix::from_predictions(&preds, &labels, 5);
        let manual_acc = pairs.iter().filter(|&&(p, y)| p == y as usize).count() as f64
            / pairs.len() as f64;
        prop_assert!((m.accuracy() - manual_acc).abs() < 1e-12);
        prop_assert!((m.micro_f1() - manual_acc).abs() < 1e-12);
        let support: u64 = (0..5).map(|c| m.support(c)).sum();
        prop_assert_eq!(support, pairs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&m.macro_f1()));
        for c in 0..5 {
            prop_assert!((0.0..=1.0).contains(&m.precision(c)));
            prop_assert!((0.0..=1.0).contains(&m.recall(c)));
        }
    }

    /// ECE is bounded in [0, 1] and zero for a one-hot oracle.
    #[test]
    fn ece_bounds(
        labels in proptest::collection::vec(0u32..4, 1..100),
        bins in 1usize..20,
    ) {
        // Oracle: probability 1 on the true class.
        let n = labels.len();
        let oracle = DenseMatrix::from_fn(n, 4, |i, j| {
            if j == labels[i] as usize { 1.0 } else { 0.0 }
        });
        prop_assert!(expected_calibration_error(&oracle, &labels, bins) < 1e-9);
        // Uniform predictor: confidence 1/4 everywhere; ECE stays bounded.
        let uniform = DenseMatrix::from_fn(n, 4, |_, _| 0.25);
        let ece = expected_calibration_error(&uniform, &labels, bins);
        prop_assert!((0.0..=1.0).contains(&ece));
    }
}
