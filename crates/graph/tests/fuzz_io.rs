//! Robustness fuzzing of the binary graph format: corrupted or truncated
//! inputs must produce errors, never panics or bogus graphs.

use nai_graph::generators::{generate, GeneratorConfig};
use nai_graph::io::{decode_graph, encode_graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_bytes() -> Vec<u8> {
    let g = generate(
        &GeneratorConfig {
            num_nodes: 60,
            feature_dim: 4,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(1),
    );
    encode_graph(&g).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any single-byte corruption either still decodes to a structurally
    /// valid graph or errors cleanly — no panic, no invariant violation.
    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..4096, delta in 1u8..255) {
        let mut data = sample_bytes();
        let idx = pos % data.len();
        data[idx] = data[idx].wrapping_add(delta);
        match decode_graph(&data) {
            Err(_) => {}
            Ok(g) => {
                // Decoded graphs must satisfy the CSR invariants.
                let n = g.num_nodes();
                prop_assert_eq!(g.features.rows(), n);
                prop_assert_eq!(g.labels.len(), n);
                let indptr = g.adj.indptr();
                prop_assert_eq!(indptr.len(), n + 1);
                prop_assert!(indptr.windows(2).all(|w| w[0] <= w[1]));
                prop_assert!(g.adj.indices().iter().all(|&j| (j as usize) < n));
            }
        }
    }

    /// Every truncation point fails cleanly.
    #[test]
    fn truncation_never_panics(cut_frac in 0.0f64..1.0) {
        let data = sample_bytes();
        let cut = ((data.len() as f64) * cut_frac) as usize;
        if cut < data.len() {
            prop_assert!(decode_graph(&data[..cut]).is_err());
        }
    }

    /// Random garbage never decodes into a panic.
    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_graph(&data);
    }
}
