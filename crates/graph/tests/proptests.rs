//! Property-based tests for the graph substrate.

use nai_graph::csr::CsrMatrix;
use nai_graph::frontier::BfsScratch;
use nai_graph::normalize::{normalized_adjacency, Convolution};
use nai_linalg::DenseMatrix;
use proptest::prelude::*;
use std::collections::HashSet;

/// Random edge list on up to `max_n` nodes.
fn edge_list(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric_and_loop_free((n, edges) in edge_list(40)) {
        let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
        prop_assert!(adj.is_symmetric(0.0));
        for i in 0..n {
            prop_assert!(adj.row_indices(i).iter().all(|&j| j as usize != i));
            // Sorted, no duplicates.
            let row = adj.row_indices(i);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
        // Degree sum equals 2m.
        let degsum: f32 = adj.degrees().iter().sum();
        prop_assert_eq!(degsum as usize, adj.nnz());
    }

    #[test]
    fn spmm_matches_dense_reference((n, edges) in edge_list(25)) {
        let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
        let x = DenseMatrix::from_fn(n, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin());
        let got = adj.spmm(&x);
        let want = adj.to_dense().matmul(&x).unwrap();
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn reverse_transition_is_row_stochastic((n, edges) in edge_list(40)) {
        let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
        let norm = normalized_adjacency(&adj, Convolution::ReverseTransition);
        for i in 0..n {
            let s: f32 = norm.row_iter(i).map(|(_, v)| v).sum();
            prop_assert!((s - 1.0).abs() < 1e-5, "row {} sums to {}", i, s);
        }
    }

    #[test]
    fn symmetric_normalization_is_symmetric((n, edges) in edge_list(30)) {
        let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
        let norm = normalized_adjacency(&adj, Convolution::Symmetric);
        prop_assert!(norm.is_symmetric(1e-5));
    }

    #[test]
    fn hop_sets_nested_and_closed_under_neighborhood((n, edges) in edge_list(30)) {
        let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
        let mut bfs = BfsScratch::new(n);
        let seeds = vec![0u32];
        let depth = 3;
        let sets = bfs.hop_sets(&adj, &seeds, depth);
        prop_assert_eq!(sets.len(), depth + 1);
        for l in 0..depth {
            let outer: HashSet<u32> = sets[l].iter().copied().collect();
            // Nesting: sets[l+1] ⊆ sets[l].
            prop_assert!(sets[l + 1].iter().all(|x| outer.contains(x)));
            // Closure: N(sets[l+1]) ⊆ sets[l].
            for &u in &sets[l + 1] {
                for (v, _) in adj.row_iter(u as usize) {
                    prop_assert!(outer.contains(&v), "neighbor {} of {} escapes set {}", v, u, l);
                }
            }
        }
    }

    /// Incremental hop-set shrinkage (the engine's post-exit path) must
    /// equal full recomputation from the survivors: same membership per
    /// level, for random graphs, random batches, random exit rounds, and
    /// random survivor subsets.
    #[test]
    fn incremental_shrink_matches_recomputation(
        (n, edges) in edge_list(30),
        raw_batch in proptest::collection::vec(0u32..30, 1..8),
        t_max in 1usize..5,
        exit_round in 0usize..4,
        keep_bits in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
        let mut batch: Vec<u32> = raw_batch.into_iter().map(|v| v % n as u32).collect();
        batch.sort_unstable();
        batch.dedup();
        // An exit round happens strictly before t_max.
        let l = exit_round.min(t_max - 1);
        // Random non-empty survivor subset of the batch.
        let mut survivors: Vec<u32> = batch
            .iter()
            .zip(keep_bits.iter().cycle())
            .filter_map(|(&v, &keep)| keep.then_some(v))
            .collect();
        if survivors.is_empty() {
            survivors.push(batch[0]);
        }

        let mut bfs = BfsScratch::new(n);
        let mut sets = bfs.hop_sets(&adj, &batch, t_max);
        bfs.shrink_hop_sets(&adj, &survivors, &mut sets[l + 1..=t_max], t_max - l - 1);
        let fresh = bfs.hop_sets(&adj, &survivors, t_max - l);
        for j in 1..=(t_max - l) {
            let shrunk: HashSet<u32> = sets[l + j].iter().copied().collect();
            let recomputed: HashSet<u32> = fresh[j].iter().copied().collect();
            prop_assert_eq!(
                &shrunk, &recomputed,
                "level {} (exit at {}, t_max {})", l + j, l, t_max
            );
            // No duplicates got introduced by the in-place retain.
            prop_assert_eq!(shrunk.len(), sets[l + j].len());
        }
    }

    #[test]
    fn induced_subgraph_preserves_internal_structure((n, edges) in edge_list(30)) {
        let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
        let picked: Vec<u32> = (0..n as u32).step_by(2).collect();
        let sub = adj.induced(&picked);
        prop_assert_eq!(sub.n(), picked.len());
        prop_assert!(sub.is_symmetric(0.0));
        // Every sub edge corresponds to an original edge.
        for (li, &gi) in picked.iter().enumerate() {
            for (lj, _) in sub.row_iter(li) {
                let gj = picked[lj as usize];
                prop_assert!(adj.row_indices(gi as usize).contains(&gj));
            }
        }
    }

    #[test]
    fn io_roundtrip_random_graphs((n, edges) in edge_list(30)) {
        let adj = CsrMatrix::undirected_adjacency(n, &edges).unwrap();
        let features = DenseMatrix::from_fn(n, 4, |r, c| (r + c) as f32 * 0.5);
        let labels: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        let g = nai_graph::Graph::new(adj, features, labels, 3).unwrap();
        let bytes = nai_graph::io::encode_graph(&g);
        let back = nai_graph::io::decode_graph(&bytes).unwrap();
        prop_assert_eq!(back.adj.indices(), g.adj.indices());
        prop_assert_eq!(back.features.as_slice(), g.features.as_slice());
        prop_assert_eq!(back.labels, g.labels);
    }
}
