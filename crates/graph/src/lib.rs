//! Sparse graph substrate for the NAI reproduction.
//!
//! The paper's entire pipeline runs on top of four graph primitives, all
//! implemented here from scratch:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row matrix with parallel
//!   SpMM (`CSR × dense`), the kernel behind feature propagation
//!   `X^(l) = Â X^(l−1)` (Eq. 2 of the paper);
//! * [`normalize`] — the generalized convolution matrix
//!   `Â = D̃^(γ−1) Ã D̃^(−γ)` with self-loops (Eq. 1), for
//!   γ ∈ {0, ½, 1};
//! * [`frontier`] — k-hop supporting-node discovery (BFS with reusable
//!   stamp marks), the inductive-inference "sample supporting nodes" step
//!   of Algorithm 1;
//! * [`generators`] — degree-corrected stochastic block models with
//!   power-law degrees and class-correlated noisy features, used to build
//!   the dataset proxies described in DESIGN.md.
//!
//! [`Graph`] bundles adjacency + features + labels, and
//! [`split::InductiveSplit`] carves it into the inductive train/val/test
//! protocol of §II-A: models only ever see the subgraph induced on
//! train ∪ val nodes; test nodes stay unseen until inference.

pub mod components;
pub mod csr;
pub mod frontier;
pub mod generators;
pub mod graph;
pub mod io;
pub mod normalize;
pub mod split;

pub use csr::CsrMatrix;
pub use graph::Graph;
pub use normalize::{normalized_adjacency, Convolution};
pub use split::InductiveSplit;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced by graph construction and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint exceeded the declared node count.
    NodeOutOfRange {
        /// Offending node id.
        node: u32,
        /// Declared node count.
        num_nodes: usize,
    },
    /// Feature/label arrays disagree with the node count.
    InconsistentArrays(String),
    /// Binary decode failure.
    Decode(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (n = {num_nodes})")
            }
            GraphError::InconsistentArrays(msg) => write!(f, "inconsistent arrays: {msg}"),
            GraphError::Decode(msg) => write!(f, "decode error: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
