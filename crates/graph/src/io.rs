//! Binary graph serialization.
//!
//! A small, versioned little-endian format (magic `NAIG`) so generated
//! dataset proxies can be cached on disk between benchmark runs. Built on
//! the `bytes` crate; no serde format crate is available offline.

use crate::csr::CsrMatrix;
use crate::graph::Graph;
use crate::{GraphError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nai_linalg::DenseMatrix;
use std::path::Path;

const MAGIC: &[u8; 4] = b"NAIG";
const VERSION: u32 = 1;

/// Encodes a graph into a byte buffer.
pub fn encode_graph(g: &Graph) -> Bytes {
    let n = g.num_nodes();
    let f = g.feature_dim();
    let nnz = g.adj.nnz();
    let mut buf = BytesMut::with_capacity(32 + nnz * 8 + n * f * 4 + n * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(f as u64);
    buf.put_u64_le(g.num_classes as u64);
    buf.put_u64_le(nnz as u64);
    for &p in g.adj.indptr() {
        buf.put_u64_le(p as u64);
    }
    for &i in g.adj.indices() {
        buf.put_u32_le(i);
    }
    for &v in g.adj.values() {
        buf.put_f32_le(v);
    }
    for &x in g.features.as_slice() {
        buf.put_f32_le(x);
    }
    for &l in &g.labels {
        buf.put_u32_le(l);
    }
    buf.freeze()
}

/// Decodes a graph from bytes produced by [`encode_graph`].
///
/// # Errors
/// Returns [`GraphError::Decode`] on truncation, bad magic or version.
pub fn decode_graph(mut data: &[u8]) -> Result<Graph> {
    let need = |data: &[u8], n: usize, what: &str| -> Result<()> {
        if data.remaining() < n {
            Err(GraphError::Decode(format!(
                "truncated while reading {what}: need {n} bytes, have {}",
                data.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(data, 8, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Decode(format!("bad magic {magic:?}")));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(GraphError::Decode(format!("unsupported version {version}")));
    }
    need(data, 32, "dimensions")?;
    let n = data.get_u64_le() as usize;
    let f = data.get_u64_le() as usize;
    let c = data.get_u64_le() as usize;
    let nnz = data.get_u64_le() as usize;
    // Corrupted dimension fields can be astronomically large; reject
    // anything whose byte requirements don't even fit in usize before any
    // multiplication can overflow or allocation can be attempted.
    let checked = |a: usize, b: usize, what: &str| -> Result<usize> {
        a.checked_mul(b)
            .ok_or_else(|| GraphError::Decode(format!("{what} size overflows")))
    };
    let indptr_bytes = checked(n.saturating_add(1), 8, "indptr")?;
    let feature_bytes = checked(checked(n, f, "features")?, 4, "features")?;
    let entry_bytes = checked(nnz, 4, "entries")?;

    need(data, indptr_bytes, "indptr")?;
    let mut indptr = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        indptr.push(data.get_u64_le() as usize);
    }
    need(data, entry_bytes, "indices")?;
    let mut triplets = Vec::with_capacity(nnz);
    let mut indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(data.get_u32_le());
    }
    need(data, entry_bytes, "values")?;
    for (row, w) in indptr.windows(2).enumerate() {
        if w[1] < w[0] || w[1] > nnz {
            return Err(GraphError::Decode(format!("corrupt indptr at row {row}")));
        }
    }
    let mut vals = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        vals.push(data.get_f32_le());
    }
    for (row, w) in indptr.windows(2).enumerate() {
        for k in w[0]..w[1] {
            triplets.push((row as u32, indices[k], vals[k]));
        }
    }
    let adj = CsrMatrix::from_coo(n, &triplets)?;

    need(data, feature_bytes, "features")?;
    let mut fdata = Vec::with_capacity(n * f);
    for _ in 0..n * f {
        fdata.push(data.get_f32_le());
    }
    let features = DenseMatrix::from_vec(n, f, fdata);

    need(data, checked(n, 4, "labels")?, "labels")?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(data.get_u32_le());
    }
    Graph::new(adj, features, labels, c)
}

const SPLIT_MAGIC: &[u8; 4] = b"NAIS";

/// Encodes an inductive split (magic `NAIS`, same versioned LE format as
/// graphs).
pub fn encode_split(s: &crate::InductiveSplit) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + 4 * (s.train.len() + s.val.len() + s.test.len()));
    buf.put_slice(SPLIT_MAGIC);
    buf.put_u32_le(VERSION);
    for part in [&s.train, &s.val, &s.test] {
        buf.put_u64_le(part.len() as u64);
        for &v in part.iter() {
            buf.put_u32_le(v);
        }
    }
    buf.freeze()
}

/// Decodes a split produced by [`encode_split`].
///
/// # Errors
/// Returns [`GraphError::Decode`] on truncation, bad magic or version.
pub fn decode_split(mut data: &[u8]) -> Result<crate::InductiveSplit> {
    let need = |data: &[u8], n: usize, what: &str| -> Result<()> {
        if data.remaining() < n {
            Err(GraphError::Decode(format!(
                "truncated while reading {what}: need {n} bytes, have {}",
                data.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(data, 8, "split header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != SPLIT_MAGIC {
        return Err(GraphError::Decode(format!(
            "bad split magic {magic:?}, expected NAIS"
        )));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(GraphError::Decode(format!(
            "unsupported split version {version}"
        )));
    }
    let mut parts: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, part) in parts.iter_mut().enumerate() {
        need(data, 8, "split part length")?;
        let len = data.get_u64_le() as usize;
        need(data, len * 4, "split part")?;
        part.reserve(len);
        for _ in 0..len {
            part.push(data.get_u32_le());
        }
        let _ = i;
    }
    if data.has_remaining() {
        return Err(GraphError::Decode(format!(
            "{} trailing bytes after split",
            data.remaining()
        )));
    }
    let [train, val, test] = parts;
    Ok(crate::InductiveSplit { train, val, test })
}

/// Writes a split to disk.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_split(s: &crate::InductiveSplit, path: &Path) -> Result<()> {
    std::fs::write(path, encode_split(s))?;
    Ok(())
}

/// Reads a split from disk.
///
/// # Errors
/// Propagates filesystem and decode errors.
pub fn load_split(path: &Path) -> Result<crate::InductiveSplit> {
    let data = std::fs::read(path)?;
    decode_split(&data)
}

/// Writes a graph to disk.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_graph(g: &Graph, path: &Path) -> Result<()> {
    std::fs::write(path, encode_graph(g))?;
    Ok(())
}

/// Reads a graph from disk.
///
/// # Errors
/// Propagates filesystem and decode errors.
pub fn load_graph(path: &Path) -> Result<Graph> {
    let data = std::fs::read(path)?;
    decode_graph(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 200,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(3),
        );
        let bytes = encode_graph(&g);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_classes, g.num_classes);
        assert_eq!(back.labels, g.labels);
        assert_eq!(back.adj.indices(), g.adj.indices());
        assert_eq!(back.adj.indptr(), g.adj.indptr());
        assert_eq!(back.features.as_slice(), g.features.as_slice());
    }

    #[test]
    fn split_roundtrip_preserves_parts() {
        let s = crate::InductiveSplit::random(100, 0.5, 0.2, &mut StdRng::seed_from_u64(4));
        let back = decode_split(&encode_split(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn split_decode_rejects_corruption() {
        let s = crate::InductiveSplit::random(50, 0.4, 0.3, &mut StdRng::seed_from_u64(5));
        let bytes = encode_split(&s);
        let mut bad = bytes.to_vec();
        bad[0] = b'Z';
        assert!(decode_split(&bad).is_err());
        for cut in [0, 4, 8, 12, bytes.len() - 1] {
            assert!(decode_split(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(decode_split(&long).is_err());
    }

    #[test]
    fn empty_split_roundtrips() {
        let s = crate::InductiveSplit {
            train: vec![],
            val: vec![],
            test: vec![],
        };
        let back = decode_split(&encode_split(&s)).unwrap();
        assert!(back.train.is_empty() && back.val.is_empty() && back.test.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let g = crate::generators::path_graph(3, 2);
        let mut data = encode_graph(&g).to_vec();
        data[0] = b'X';
        assert!(matches!(decode_graph(&data), Err(GraphError::Decode(_))));
    }

    #[test]
    fn truncation_rejected_not_panic() {
        let g = crate::generators::path_graph(5, 2);
        let data = encode_graph(&g).to_vec();
        for cut in [0, 3, 8, 20, data.len() - 1] {
            assert!(
                decode_graph(&data[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let g = crate::generators::path_graph(3, 2);
        let mut data = encode_graph(&g).to_vec();
        data[4] = 99;
        assert!(matches!(decode_graph(&data), Err(GraphError::Decode(_))));
    }

    #[test]
    fn file_roundtrip() {
        let g = crate::generators::star_graph(10, 4);
        let dir = std::env::temp_dir().join("nai_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.naig");
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        assert_eq!(back.num_nodes(), 10);
        std::fs::remove_file(&path).ok();
    }
}
