//! Generalized graph convolution matrix `Â = D̃^(γ−1) Ã D̃^(−γ)` (Eq. 1).
//!
//! `Ã = A + I` adds self-loops; `D̃` is its degree matrix. The convolution
//! coefficient γ recovers the three standard operators:
//!
//! | γ | `Â` | used by |
//! |---|-----|---------|
//! | 1 | `Ã D̃⁻¹` (transition) | GraphSAGE-style mean over in-edges |
//! | ½ | `D̃^(−½) Ã D̃^(−½)` (symmetric) | GCN, SGC — the paper's default |
//! | 0 | `D̃⁻¹ Ã` (reverse transition) | JK-Net style row-stochastic |

use crate::csr::CsrMatrix;

/// Convolution coefficient γ of Eq. (1), with the three named operating
/// points used in the literature plus a free-form value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Convolution {
    /// γ = 1: transition matrix `Ã D̃⁻¹` (column-stochastic).
    Transition,
    /// γ = ½: symmetric normalization `D̃^(−½) Ã D̃^(−½)` — the paper's
    /// experimental default.
    Symmetric,
    /// γ = 0: reverse transition `D̃⁻¹ Ã` (row-stochastic).
    ReverseTransition,
    /// Arbitrary γ ∈ [0, 1].
    Gamma(f32),
}

impl Convolution {
    /// The numeric γ value.
    pub fn gamma(self) -> f32 {
        match self {
            Convolution::Transition => 1.0,
            Convolution::Symmetric => 0.5,
            Convolution::ReverseTransition => 0.0,
            Convolution::Gamma(g) => g,
        }
    }
}

/// Builds `Â = D̃^(γ−1) Ã D̃^(−γ)` from a raw (unweighted, symmetric,
/// loop-free) adjacency matrix. Self-loops are added, then each entry
/// `(i, j)` receives weight `d̃_i^(γ−1) · d̃_j^(−γ)` where `d̃ = deg + 1`.
///
/// # Panics
/// Panics (debug) if `adj` contains self-loops — callers construct
/// adjacency through [`CsrMatrix::undirected_adjacency`], which strips them.
pub fn normalized_adjacency(adj: &CsrMatrix, conv: Convolution) -> CsrMatrix {
    let n = adj.n();
    let gamma = conv.gamma();
    let deg: Vec<f32> = adj.degrees();
    // d̃^(γ−1) and d̃^(−γ) lookup tables.
    let left: Vec<f32> = deg.iter().map(|&d| (d + 1.0).powf(gamma - 1.0)).collect();
    let right: Vec<f32> = deg.iter().map(|&d| (d + 1.0).powf(-gamma)).collect();

    let mut triplets = Vec::with_capacity(adj.nnz() + n);
    for i in 0..n {
        for (j, v) in adj.row_iter(i) {
            debug_assert_ne!(i as u32, j, "adjacency must be loop-free");
            triplets.push((i as u32, j, v * left[i] * right[j as usize]));
        }
        // Self-loop from Ã = A + I.
        triplets.push((i as u32, i as u32, left[i] * right[i]));
    }
    CsrMatrix::from_coo(n, &triplets).expect("indices verified by construction")
}

/// Degrees-plus-one vector `d̃` used by the stationary-state formula.
pub fn tilde_degrees(adj: &CsrMatrix) -> Vec<f32> {
    adj.degrees().iter().map(|&d| d + 1.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrMatrix {
        CsrMatrix::undirected_adjacency(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn gamma_values() {
        assert_eq!(Convolution::Transition.gamma(), 1.0);
        assert_eq!(Convolution::Symmetric.gamma(), 0.5);
        assert_eq!(Convolution::ReverseTransition.gamma(), 0.0);
        assert_eq!(Convolution::Gamma(0.3).gamma(), 0.3);
    }

    #[test]
    fn reverse_transition_rows_sum_to_one() {
        // γ = 0: Â = D̃⁻¹ Ã is row-stochastic.
        let norm = normalized_adjacency(&path4(), Convolution::ReverseTransition);
        for i in 0..4 {
            let s: f32 = norm.row_iter(i).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
    }

    #[test]
    fn transition_columns_sum_to_one() {
        // γ = 1: Â = Ã D̃⁻¹ is column-stochastic.
        let norm = normalized_adjacency(&path4(), Convolution::Transition);
        let dense = norm.to_dense();
        for j in 0..4 {
            let s: f32 = (0..4).map(|i| dense.get(i, j)).sum();
            assert!((s - 1.0).abs() < 1e-6, "col {j} sums to {s}");
        }
    }

    #[test]
    fn symmetric_matrix_is_symmetric() {
        let norm = normalized_adjacency(&path4(), Convolution::Symmetric);
        assert!(norm.is_symmetric(1e-6));
    }

    #[test]
    fn self_loops_present_with_correct_weight() {
        let norm = normalized_adjacency(&path4(), Convolution::Symmetric);
        // Node 0 has degree 1, d̃ = 2 → self weight = 2^(−½)·2^(−½) = ½.
        let self_w = norm
            .row_iter(0)
            .find(|&(c, _)| c == 0)
            .map(|(_, v)| v)
            .unwrap();
        assert!((self_w - 0.5).abs() < 1e-6);
    }

    #[test]
    fn symmetric_entry_formula() {
        // Edge (1, 2): d̃_1 = 3, d̃_2 = 3 → weight 1/3.
        let norm = normalized_adjacency(&path4(), Convolution::Symmetric);
        let w = norm
            .row_iter(1)
            .find(|&(c, _)| c == 2)
            .map(|(_, v)| v)
            .unwrap();
        assert!((w - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_node_gets_unit_self_loop() {
        let adj = CsrMatrix::undirected_adjacency(2, &[]).unwrap();
        let norm = normalized_adjacency(&adj, Convolution::Symmetric);
        let w = norm
            .row_iter(0)
            .find(|&(c, _)| c == 0)
            .map(|(_, v)| v)
            .unwrap();
        assert!((w - 1.0).abs() < 1e-6);
        assert_eq!(norm.row_nnz(0), 1);
    }

    #[test]
    fn tilde_degrees_are_deg_plus_one() {
        assert_eq!(tilde_degrees(&path4()), vec![2.0, 3.0, 3.0, 2.0]);
    }

    #[test]
    fn propagation_preserves_constant_vector_for_gamma_zero() {
        // Row-stochastic Â maps the all-ones vector to itself.
        let norm = normalized_adjacency(&path4(), Convolution::ReverseTransition);
        let ones = nai_linalg::DenseMatrix::from_fn(4, 1, |_, _| 1.0);
        let out = norm.spmm(&ones);
        for r in 0..4 {
            assert!((out.get(r, 0) - 1.0).abs() < 1e-6);
        }
    }
}
