//! Connected-component labelling.
//!
//! The stationary state `X^(∞)` (Eq. 6–7) is a per-component rank-1
//! object: nodes only mix with their own component in the infinite-depth
//! limit. We label components once per graph with an iterative BFS.

use crate::csr::CsrMatrix;

/// Component labelling: `labels[i]` is the component id of node `i`,
/// ids are dense in `0..num_components`.
#[derive(Debug, Clone)]
pub struct Components {
    /// Per-node component id.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Sizes of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Nodes of each component, grouped.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &l) in self.labels.iter().enumerate() {
            out[l as usize].push(i as u32);
        }
        out
    }
}

/// Labels connected components of an undirected adjacency matrix.
pub fn connected_components(adj: &CsrMatrix) -> Components {
    let n = adj.n();
    let mut labels = vec![u32::MAX; n];
    let mut queue: Vec<u32> = Vec::new();
    let mut count = 0u32;
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = count;
        queue.clear();
        queue.push(start as u32);
        while let Some(u) = queue.pop() {
            for (v, _) in adj.row_iter(u as usize) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = count;
                    queue.push(v);
                }
            }
        }
        count += 1;
    }
    Components {
        labels,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component_path() {
        let adj = CsrMatrix::undirected_adjacency(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = connected_components(&adj);
        assert_eq!(c.count, 1);
        assert!(c.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_components_plus_isolate() {
        let adj = CsrMatrix::undirected_adjacency(5, &[(0, 1), (2, 3)]).unwrap();
        let c = connected_components(&adj);
        assert_eq!(c.count, 3);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[2], c.labels[3]);
        assert_ne!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[4], c.labels[0]);
        assert_eq!(c.sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn members_partition_nodes() {
        let adj = CsrMatrix::undirected_adjacency(6, &[(0, 1), (1, 2), (4, 5)]).unwrap();
        let c = connected_components(&adj);
        let members = c.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 6);
        assert!(members.iter().all(|m| !m.is_empty()));
    }

    #[test]
    fn empty_graph_has_no_components() {
        let adj = CsrMatrix::undirected_adjacency(0, &[]).unwrap();
        let c = connected_components(&adj);
        assert_eq!(c.count, 0);
        assert!(c.labels.is_empty());
    }
}
