//! Inductive train/val/test splits (§II-A of the paper).
//!
//! The node set is partitioned into training, validation and test nodes.
//! Models are trained on the subgraph induced by train ∪ val nodes only
//! (`G_train`); test nodes — and every edge incident to them — are invisible
//! until inference, when they arrive as "unseen" nodes of the full graph
//! `G`. This is what forces feature propagation to run online and is the
//! setting NAI accelerates.

use crate::graph::Graph;
use crate::{GraphError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Disjoint node-index sets for the inductive protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InductiveSplit {
    /// Labeled training nodes (`V_l` in the paper).
    pub train: Vec<u32>,
    /// Validation nodes (used for model selection / NAI operating points).
    pub val: Vec<u32>,
    /// Test nodes — unseen during training.
    pub test: Vec<u32>,
}

impl InductiveSplit {
    /// Random split by fractions; remaining mass goes to test.
    ///
    /// # Panics
    /// Panics if fractions are negative or sum above 1.
    pub fn random<R: Rng>(n: usize, train_frac: f64, val_frac: f64, rng: &mut R) -> Self {
        assert!(train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(rng);
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_val = (n as f64 * val_frac).round() as usize;
        let train = ids[..n_train].to_vec();
        let val = ids[n_train..(n_train + n_val).min(n)].to_vec();
        let test = ids[(n_train + n_val).min(n)..].to_vec();
        Self { train, val, test }
    }

    /// Validates the split against a node count: disjoint, in-range, and
    /// jointly covering at most `n` nodes.
    ///
    /// # Errors
    /// Returns [`GraphError::InconsistentArrays`] on overlap or range
    /// violations.
    pub fn validate(&self, n: usize) -> Result<()> {
        let mut seen = vec![false; n];
        for (name, set) in [
            ("train", &self.train),
            ("val", &self.val),
            ("test", &self.test),
        ] {
            for &v in set.iter() {
                if v as usize >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: v,
                        num_nodes: n,
                    });
                }
                if seen[v as usize] {
                    return Err(GraphError::InconsistentArrays(format!(
                        "node {v} appears twice (last in {name})"
                    )));
                }
                seen[v as usize] = true;
            }
        }
        Ok(())
    }

    /// The observed node set train ∪ val, sorted — this is `G_train`'s
    /// node universe.
    pub fn observed(&self) -> Vec<u32> {
        let mut obs: Vec<u32> = self.train.iter().chain(self.val.iter()).copied().collect();
        obs.sort_unstable();
        obs
    }
}

/// Everything training needs about the observed subgraph, produced once by
/// [`build_training_view`]: the induced graph, plus mappings between global
/// and local (subgraph) node ids.
#[derive(Debug, Clone)]
pub struct TrainingView {
    /// Induced subgraph on train ∪ val (local ids).
    pub graph: Graph,
    /// `local_of[global] = local id + 1`, or `0` when unobserved.
    local_of: Vec<u32>,
    /// `global_of[local] = global id`.
    pub global_of: Vec<u32>,
    /// Train node ids in *local* coordinates.
    pub train_local: Vec<u32>,
    /// Val node ids in *local* coordinates.
    pub val_local: Vec<u32>,
}

impl TrainingView {
    /// Local id of a global node, if observed.
    pub fn local_of(&self, global: u32) -> Option<u32> {
        match self.local_of.get(global as usize) {
            Some(&x) if x > 0 => Some(x - 1),
            _ => None,
        }
    }
}

/// Builds the inductive training view: induced subgraph over train ∪ val
/// plus id mappings.
///
/// # Errors
/// Propagates validation errors from the split.
pub fn build_training_view(graph: &Graph, split: &InductiveSplit) -> Result<TrainingView> {
    split.validate(graph.num_nodes())?;
    let observed = split.observed();
    let (sub, global_of) = graph.induced_subgraph(&observed)?;
    let mut local_of = vec![0u32; graph.num_nodes()];
    for (l, &g) in global_of.iter().enumerate() {
        local_of[g as usize] = l as u32 + 1;
    }
    let to_local = |set: &[u32]| -> Vec<u32> {
        set.iter()
            .map(|&g| local_of[g as usize] - 1)
            .collect::<Vec<u32>>()
    };
    Ok(TrainingView {
        train_local: to_local(&split.train),
        val_local: to_local(&split.val),
        graph: sub,
        local_of,
        global_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use nai_linalg::DenseMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Graph {
        let adj =
            CsrMatrix::undirected_adjacency(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let feats = DenseMatrix::from_fn(6, 2, |r, _| r as f32);
        Graph::new(adj, feats, vec![0, 1, 0, 1, 0, 1], 2).unwrap()
    }

    #[test]
    fn random_split_partitions_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = InductiveSplit::random(100, 0.5, 0.2, &mut rng);
        assert_eq!(s.train.len(), 50);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 30);
        s.validate(100).unwrap();
    }

    #[test]
    fn validate_catches_overlap() {
        let s = InductiveSplit {
            train: vec![0, 1],
            val: vec![1],
            test: vec![],
        };
        assert!(s.validate(3).is_err());
    }

    #[test]
    fn validate_catches_out_of_range() {
        let s = InductiveSplit {
            train: vec![5],
            val: vec![],
            test: vec![],
        };
        assert!(s.validate(3).is_err());
    }

    #[test]
    fn training_view_hides_test_edges() {
        let g = toy();
        let split = InductiveSplit {
            train: vec![0, 1, 2],
            val: vec![3],
            test: vec![4, 5],
        };
        let view = build_training_view(&g, &split).unwrap();
        assert_eq!(view.graph.num_nodes(), 4);
        // Edges among {0,1,2,3}: (0,1),(1,2),(2,3) — the (3,4) edge is gone.
        assert_eq!(view.graph.num_edges(), 3);
        assert_eq!(view.local_of(4), None);
        assert_eq!(view.local_of(0), Some(0));
        assert_eq!(view.global_of.len(), 4);
        // Labels survive the remap.
        for &t in &view.train_local {
            let g_id = view.global_of[t as usize];
            assert_eq!(view.graph.labels[t as usize], g.labels[g_id as usize]);
        }
    }

    #[test]
    fn observed_is_sorted_union() {
        let split = InductiveSplit {
            train: vec![4, 0],
            val: vec![2],
            test: vec![1, 3],
        };
        assert_eq!(split.observed(), vec![0, 2, 4]);
    }
}
