//! Compressed sparse row matrix with the SpMM kernel that powers feature
//! propagation.

use crate::{GraphError, Result};
use nai_linalg::parallel::par_rows_mut;
use nai_linalg::DenseMatrix;

/// Square sparse matrix in CSR form.
///
/// Invariants (checked by constructors, relied on everywhere):
/// * `indptr.len() == n + 1`, `indptr[0] == 0`, monotonically non-decreasing;
/// * `indices[indptr[i]..indptr[i+1]]` sorted ascending, no duplicates,
///   all `< n`;
/// * `values.len() == indices.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from COO triplets, summing duplicates.
    ///
    /// # Errors
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= n`.
    pub fn from_coo(n: usize, triplets: &[(u32, u32, f32)]) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: r,
                    num_nodes: n,
                });
            }
            if c as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: c,
                    num_nodes: n,
                });
            }
        }
        // Counting sort by row, then sort each row segment by column.
        let mut counts = vec![0usize; n + 1];
        for &(r, _, _) in triplets {
            counts[r as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cols = vec![0u32; triplets.len()];
        let mut vals = vec![0f32; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let slot = cursor[r as usize];
            cols[slot] = c;
            vals[slot] = v;
            cursor[r as usize] += 1;
        }
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        let mut out_cols: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut out_vals: Vec<f32> = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for i in 0..n {
            scratch.clear();
            scratch.extend(
                cols[counts[i]..counts[i + 1]]
                    .iter()
                    .copied()
                    .zip(vals[counts[i]..counts[i + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut last: Option<u32> = None;
            for &(c, v) in scratch.iter() {
                if last == Some(c) {
                    // Duplicate entry: accumulate.
                    *out_vals.last_mut().expect("non-empty on duplicate") += v;
                } else {
                    out_cols.push(c);
                    out_vals.push(v);
                    last = Some(c);
                }
            }
            indptr.push(out_cols.len());
        }
        Ok(Self {
            n,
            indptr,
            indices: out_cols,
            values: out_vals,
        })
    }

    /// Builds an **undirected, unweighted** adjacency matrix from an edge
    /// list. Each `(u, v)` with `u != v` contributes entries in both
    /// directions with value `1.0`; self-edges and duplicates collapse to a
    /// single unit entry (simple-graph semantics).
    ///
    /// # Errors
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= n`.
    pub fn undirected_adjacency(n: usize, edges: &[(u32, u32)]) -> Result<Self> {
        let mut trip = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u == v {
                continue; // simple graph: drop self loops
            }
            trip.push((u, v, 1.0));
            trip.push((v, u, 1.0));
        }
        let mut csr = Self::from_coo(n, &trip)?;
        // Duplicates were summed; clamp back to unit weights.
        for v in csr.values.iter_mut() {
            *v = 1.0;
        }
        Ok(csr)
    }

    /// Dimension of the (square) matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (`n + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, concatenated per row.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Entry values, parallel to [`Self::indices`].
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable entry values (used by normalisation).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[u32] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// `(column, value)` iterator over row `i`.
    #[inline]
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of stored entries in row `i` (the node degree for adjacency
    /// matrices).
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Degrees of every node (row nnz), as f32.
    pub fn degrees(&self) -> Vec<f32> {
        (0..self.n).map(|i| self.row_nnz(i) as f32).collect()
    }

    /// Sparse × dense product `self × rhs`, parallel over output rows.
    ///
    /// This is the feature-propagation kernel: one call per propagation
    /// depth, `O(nnz · f)` multiply-accumulates.
    ///
    /// # Panics
    /// Panics if `rhs.rows() != self.n()`.
    pub fn spmm(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            rhs.rows(),
            self.n,
            "spmm: rhs has {} rows, matrix is {}x{}",
            rhs.rows(),
            self.n,
            self.n
        );
        let f = rhs.cols();
        let mut out = DenseMatrix::zeros(self.n, f);
        if f == 0 {
            return out;
        }
        let avg_nnz = self.nnz().div_ceil(self.n.max(1));
        let rhs_data = rhs.as_slice();
        par_rows_mut(out.as_mut_slice(), f, avg_nnz * f, |row0, chunk| {
            for (off, orow) in chunk.chunks_mut(f).enumerate() {
                let i = row0 + off;
                for (j, w) in self.row_iter(i) {
                    let src = &rhs_data[j as usize * f..(j as usize + 1) * f];
                    for (o, &x) in orow.iter_mut().zip(src.iter()) {
                        *o += w * x;
                    }
                }
            }
        });
        out
    }

    /// Sparse × dense restricted to a subset of output rows.
    ///
    /// `out_rows[t]` is the global row whose product lands in output row
    /// `t`; `col_map[j]` gives the row of `rhs` holding the value for global
    /// column `j` (or `u32::MAX` when absent — those columns are skipped,
    /// which the inference engine uses when boundary values are provably
    /// unneeded). Returns the dense result plus the number of
    /// multiply-accumulate operations actually performed.
    pub fn spmm_gather(
        &self,
        out_rows: &[u32],
        col_map: &[u32],
        rhs: &DenseMatrix,
    ) -> (DenseMatrix, u64) {
        let mut out = DenseMatrix::zeros(out_rows.len(), rhs.cols());
        let macs = self.spmm_gather_into(out_rows, col_map, rhs, &mut out, false);
        (out, macs)
    }

    /// [`Self::spmm_gather`] into a caller-owned output buffer (resized
    /// and zeroed in place), optionally parallel over output rows.
    ///
    /// Each output row depends only on its own adjacency row, so the
    /// parallel path is **bit-identical** with the serial one — `parallel`
    /// trades threads for wall-clock without perturbing results or the
    /// returned MAC count. Small frontiers fall back to the serial loop
    /// (see [`nai_linalg::parallel::thread_count`]).
    pub fn spmm_gather_into(
        &self,
        out_rows: &[u32],
        col_map: &[u32],
        rhs: &DenseMatrix,
        out: &mut DenseMatrix,
        parallel: bool,
    ) -> u64 {
        let f = rhs.cols();
        out.reset_zeroed(out_rows.len(), f);
        let rhs_data = rhs.as_slice();
        let avg_nnz = self.nnz().div_ceil(self.n.max(1));
        let threads = if parallel && f > 0 && !out_rows.is_empty() {
            nai_linalg::parallel::thread_count(out_rows.len() * avg_nnz.max(1) * f)
        } else {
            1
        };
        if threads <= 1 {
            let mut macs = 0u64;
            for (t, &gi) in out_rows.iter().enumerate() {
                let orow = out.row_mut(t);
                for (j, w) in self.row_iter(gi as usize) {
                    let local = col_map[j as usize];
                    if local == u32::MAX {
                        continue;
                    }
                    let src = &rhs_data[local as usize * f..(local as usize + 1) * f];
                    for (o, &x) in orow.iter_mut().zip(src.iter()) {
                        *o += w * x;
                    }
                    macs += f as u64;
                }
            }
            return macs;
        }
        // Parallel path: count MACs in a cheap index-only pre-pass, then
        // fill disjoint row chunks concurrently.
        let mut macs = 0u64;
        for &gi in out_rows {
            for &j in self.row_indices(gi as usize) {
                if col_map[j as usize] != u32::MAX {
                    macs += f as u64;
                }
            }
        }
        par_rows_mut(out.as_mut_slice(), f, avg_nnz.max(1) * f, |row0, chunk| {
            for (off, orow) in chunk.chunks_mut(f).enumerate() {
                let gi = out_rows[row0 + off];
                for (j, w) in self.row_iter(gi as usize) {
                    let local = col_map[j as usize];
                    if local == u32::MAX {
                        continue;
                    }
                    let src = &rhs_data[local as usize * f..(local as usize + 1) * f];
                    for (o, &x) in orow.iter_mut().zip(src.iter()) {
                        *o += w * x;
                    }
                }
            }
        });
        macs
    }

    /// Dense representation (tests / tiny graphs only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for (j, v) in self.row_iter(i) {
                out.set(i, j as usize, v);
            }
        }
        out
    }

    /// True when the matrix equals its transpose (within `tol`).
    pub fn is_symmetric(&self, tol: f32) -> bool {
        for i in 0..self.n {
            for (j, v) in self.row_iter(i) {
                let back = self
                    .row_iter(j as usize)
                    .find(|&(c, _)| c as usize == i)
                    .map(|(_, w)| w);
                match back {
                    Some(w) if (w - v).abs() <= tol => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Extracts the induced submatrix on `nodes` (global ids, must be
    /// unique). Returns the submatrix; local ids follow the order of
    /// `nodes`.
    pub fn induced(&self, nodes: &[u32]) -> CsrMatrix {
        let mut local = vec![u32::MAX; self.n];
        for (t, &g) in nodes.iter().enumerate() {
            local[g as usize] = t as u32;
        }
        let mut indptr = Vec::with_capacity(nodes.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &g in nodes {
            for (j, v) in self.row_iter(g as usize) {
                let lj = local[j as usize];
                if lj != u32::MAX {
                    indices.push(lj);
                    values.push(v);
                }
            }
            // Keep each row sorted by local id.
            let lo = indptr[indptr.len() - 1];
            let mut row: Vec<(u32, f32)> = indices[lo..]
                .iter()
                .copied()
                .zip(values[lo..].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            for (k, (c, v)) in row.into_iter().enumerate() {
                indices[lo + k] = c;
                values[lo + k] = v;
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            n: nodes.len(),
            indptr,
            indices,
            values,
        }
    }

    /// Second-largest eigenvalue magnitude estimate via power iteration with
    /// deflation against the dominant eigenvector. Used by the Eq. (10)
    /// personalized-depth upper bound. Only meaningful for symmetric
    /// matrices; `iters` of 50–100 is plenty for the tests.
    pub fn lambda2_estimate(&self, iters: usize, seed: u64) -> f32 {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        if self.n < 2 {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let normalize = |v: &mut [f32]| {
            let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if n > 0.0 {
                for x in v.iter_mut() {
                    *x /= n;
                }
            }
        };
        let mat_vec = |v: &[f32], out: &mut [f32]| {
            out.fill(0.0);
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (j, w) in self.row_iter(i) {
                    acc += w * v[j as usize];
                }
                *o = acc;
            }
        };
        // Dominant eigenvector.
        let mut v1: Vec<f32> = (0..self.n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut tmp = vec![0.0f32; self.n];
        normalize(&mut v1);
        for _ in 0..iters {
            mat_vec(&v1, &mut tmp);
            std::mem::swap(&mut v1, &mut tmp);
            normalize(&mut v1);
        }
        // Deflated second vector.
        let mut v2: Vec<f32> = (0..self.n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut lambda2 = 0.0f32;
        for _ in 0..iters {
            let proj: f32 = v2.iter().zip(v1.iter()).map(|(a, b)| a * b).sum();
            for (x, &u) in v2.iter_mut().zip(v1.iter()) {
                *x -= proj * u;
            }
            mat_vec(&v2, &mut tmp);
            lambda2 = tmp.iter().map(|x| x * x).sum::<f32>().sqrt();
            std::mem::swap(&mut v2, &mut tmp);
            normalize(&mut v2);
        }
        lambda2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrMatrix {
        CsrMatrix::undirected_adjacency(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_coo_sorts_and_dedups() {
        let m = CsrMatrix::from_coo(3, &[(0, 2, 1.0), (0, 1, 2.0), (0, 2, 3.0)]).unwrap();
        assert_eq!(m.row_indices(0), &[1, 2]);
        let vals: Vec<f32> = m.row_iter(0).map(|(_, v)| v).collect();
        assert_eq!(vals, vec![2.0, 4.0]);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn from_coo_rejects_out_of_range() {
        assert!(matches!(
            CsrMatrix::from_coo(2, &[(0, 5, 1.0)]),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn undirected_adjacency_is_symmetric_unit() {
        let m = CsrMatrix::undirected_adjacency(4, &[(0, 1), (1, 0), (2, 3), (3, 3)]).unwrap();
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.nnz(), 4); // (0,1),(1,0),(2,3),(3,2); self loop dropped
        assert!(m.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn degrees_of_triangle() {
        assert_eq!(triangle().degrees(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = triangle();
        let x = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let got = m.spmm(&x);
        let want = m.to_dense().matmul(&x).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn spmm_on_empty_rows_gives_zero() {
        let m = CsrMatrix::from_coo(3, &[]).unwrap();
        let x = DenseMatrix::from_fn(3, 2, |_, _| 1.0);
        let got = m.spmm(&x);
        assert!(got.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn spmm_gather_subset_matches_full() {
        let m = triangle();
        let x = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let full = m.spmm(&x);
        let col_map: Vec<u32> = (0..3).collect::<Vec<u32>>();
        let (sub, macs) = m.spmm_gather(&[2, 0], &col_map, &x);
        assert_eq!(sub.row(0), full.row(2));
        assert_eq!(sub.row(1), full.row(0));
        assert_eq!(macs, (2 + 2) * 2); // two rows of degree 2, f = 2
    }

    #[test]
    fn spmm_gather_skips_unmapped_columns() {
        let m = triangle();
        let x = DenseMatrix::from_fn(3, 2, |_, _| 1.0);
        let mut col_map = vec![u32::MAX; 3];
        col_map[1] = 1; // only column 1 available
        let (sub, macs) = m.spmm_gather(&[0], &col_map, &x);
        assert_eq!(sub.row(0), &[1.0, 1.0]); // only neighbor 1 contributes
        assert_eq!(macs, 2);
    }

    #[test]
    fn induced_submatrix_keeps_internal_edges() {
        let m = CsrMatrix::undirected_adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let sub = m.induced(&[1, 2, 4]);
        assert_eq!(sub.n(), 3);
        // Edges inside {1,2,4}: only (1,2).
        assert_eq!(sub.nnz(), 2);
        assert_eq!(sub.row_indices(0), &[1]); // node 1 -> node 2 (local 1)
        assert_eq!(sub.row_indices(2), &[] as &[u32]); // node 4 isolated
    }

    #[test]
    fn lambda2_of_complete_graph_normalized() {
        // For K_n with symmetric normalization and self loops, spectrum is
        // known to have lambda_2 well below 1.
        let edges: Vec<(u32, u32)> = (0..6u32)
            .flat_map(|i| ((i + 1)..6).map(move |j| (i, j)))
            .collect();
        let adj = CsrMatrix::undirected_adjacency(6, &edges).unwrap();
        let norm = crate::normalize::normalized_adjacency(&adj, crate::Convolution::Symmetric);
        let l2 = norm.lambda2_estimate(100, 3);
        assert!(l2 < 0.5, "lambda2 = {l2}");
    }

    #[test]
    fn row_iter_yields_sorted_columns() {
        let m = CsrMatrix::from_coo(4, &[(1, 3, 1.0), (1, 0, 1.0), (1, 2, 1.0)]).unwrap();
        let cols: Vec<u32> = m.row_iter(1).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }
}
