//! Supporting-node discovery for batched inductive inference.
//!
//! To compute depth-`l` features of a test batch online (Fig. 1 (d)), the
//! engine needs the batch's `r`-hop neighborhoods ("supporting nodes"). The
//! number of supporting nodes grows roughly exponentially with `r` — the
//! *neighbor explosion* the paper's introduction describes — so shrinking
//! `r` per node is exactly where NAI's speedup comes from.
//!
//! [`BfsScratch`] keeps a stamp array so repeated BFS calls (the engine
//! recomputes frontiers whenever nodes exit early) cost `O(visited)`, never
//! `O(n)` re-initialisation.

use crate::csr::CsrMatrix;

/// Reusable BFS workspace. One instance per engine; never shrinks.
#[derive(Debug)]
pub struct BfsScratch {
    stamp: Vec<u64>,
    current: u64,
}

impl BfsScratch {
    /// Workspace for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            current: 0,
        }
    }

    /// All nodes within `hops` of `seeds` (including the seeds), in BFS
    /// discovery order. `hops == 0` returns the (deduplicated) seeds.
    pub fn nodes_within(&mut self, adj: &CsrMatrix, seeds: &[u32], hops: usize) -> Vec<u32> {
        self.current += 1;
        let stamp = self.current;
        let mut out: Vec<u32> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            if self.stamp[s as usize] != stamp {
                self.stamp[s as usize] = stamp;
                out.push(s);
            }
        }
        let mut level_start = 0usize;
        for _ in 0..hops {
            let level_end = out.len();
            if level_start == level_end {
                break; // frontier exhausted early
            }
            for idx in level_start..level_end {
                let u = out[idx];
                for (v, _) in adj.row_iter(u as usize) {
                    if self.stamp[v as usize] != stamp {
                        self.stamp[v as usize] = stamp;
                        out.push(v);
                    }
                }
            }
            level_start = level_end;
        }
        out
    }

    /// Hop sets for Algorithm 1: `sets[l]` contains all nodes within
    /// `max_depth − l` hops of `seeds`, for `l = 0..=max_depth`. So
    /// `sets[0]` is the widest supporting frontier and
    /// `sets[max_depth]` is the batch itself. Sets are nested:
    /// `sets[l+1] ⊆ sets[l]`, and `N(sets[l+1]) ⊆ sets[l]`.
    pub fn hop_sets(&mut self, adj: &CsrMatrix, seeds: &[u32], max_depth: usize) -> Vec<Vec<u32>> {
        // One BFS recording distance, then bucket by hop count.
        self.current += 1;
        let stamp = self.current;
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(seeds.len()); // (node, dist)
        for &s in seeds {
            if self.stamp[s as usize] != stamp {
                self.stamp[s as usize] = stamp;
                order.push((s, 0));
            }
        }
        let mut qi = 0usize;
        while qi < order.len() {
            let (u, d) = order[qi];
            qi += 1;
            if d as usize >= max_depth {
                continue;
            }
            for (v, _) in adj.row_iter(u as usize) {
                if self.stamp[v as usize] != stamp {
                    self.stamp[v as usize] = stamp;
                    order.push((v, d + 1));
                }
            }
        }
        let mut sets: Vec<Vec<u32>> = vec![Vec::new(); max_depth + 1];
        for &(node, dist) in &order {
            // Node at distance d belongs to sets[l] whenever
            // max_depth − l >= d, i.e. l <= max_depth − d.
            for set in sets.iter_mut().take(max_depth - dist as usize + 1) {
                set.push(node);
            }
        }
        sets
    }
}

/// Total nnz over the rows of `nodes` — the SpMM cost of propagating one
/// step for this frontier (in multiply-accumulates per feature column).
pub fn frontier_nnz(adj: &CsrMatrix, nodes: &[u32]) -> u64 {
    nodes.iter().map(|&u| adj.row_nnz(u as usize) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> CsrMatrix {
        CsrMatrix::undirected_adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn zero_hops_returns_seeds_dedup() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let got = bfs.nodes_within(&adj, &[2, 2, 4], 0);
        assert_eq!(got, vec![2, 4]);
    }

    #[test]
    fn hops_expand_along_path() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let mut got = bfs.nodes_within(&adj, &[0], 2);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        let mut all = bfs.nodes_within(&adj, &[0], 10);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        for _ in 0..10 {
            let got = bfs.nodes_within(&adj, &[2], 1);
            let mut sorted = got.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3]);
        }
    }

    #[test]
    fn hop_sets_are_nested_and_correct() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let sets = bfs.hop_sets(&adj, &[0], 3);
        assert_eq!(sets.len(), 4);
        let as_sorted = |v: &Vec<u32>| {
            let mut s = v.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(as_sorted(&sets[3]), vec![0]); // batch itself
        assert_eq!(as_sorted(&sets[2]), vec![0, 1]);
        assert_eq!(as_sorted(&sets[1]), vec![0, 1, 2]);
        assert_eq!(as_sorted(&sets[0]), vec![0, 1, 2, 3]);
        // Nesting.
        for l in 0..3 {
            let outer: std::collections::HashSet<u32> = sets[l].iter().copied().collect();
            assert!(sets[l + 1].iter().all(|x| outer.contains(x)));
        }
    }

    #[test]
    fn hop_sets_match_nodes_within() {
        let adj =
            CsrMatrix::undirected_adjacency(7, &[(0, 1), (0, 2), (1, 3), (2, 4), (4, 5), (5, 6)])
                .unwrap();
        let mut bfs = BfsScratch::new(7);
        let sets = bfs.hop_sets(&adj, &[0, 6], 2);
        for (l, set) in sets.iter().enumerate() {
            let mut a = set.clone();
            a.sort_unstable();
            let mut b = bfs.nodes_within(&adj, &[0, 6], 2 - l);
            b.sort_unstable();
            assert_eq!(a, b, "hop set {l}");
        }
    }

    #[test]
    fn frontier_nnz_counts_degrees() {
        let adj = path5();
        assert_eq!(frontier_nnz(&adj, &[0, 2]), 1 + 2);
        assert_eq!(frontier_nnz(&adj, &[]), 0);
    }

    #[test]
    fn disconnected_seed_stops_expanding() {
        let adj = CsrMatrix::undirected_adjacency(4, &[(0, 1)]).unwrap();
        let mut bfs = BfsScratch::new(4);
        let got = bfs.nodes_within(&adj, &[3], 5);
        assert_eq!(got, vec![3]);
    }
}
