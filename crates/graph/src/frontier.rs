//! Supporting-node discovery for batched inductive inference.
//!
//! To compute depth-`l` features of a test batch online (Fig. 1 (d)), the
//! engine needs the batch's `r`-hop neighborhoods ("supporting nodes"). The
//! number of supporting nodes grows roughly exponentially with `r` — the
//! *neighbor explosion* the paper's introduction describes — so shrinking
//! `r` per node is exactly where NAI's speedup comes from.
//!
//! [`BfsScratch`] keeps stamp and distance arrays so repeated BFS calls
//! cost `O(visited)`, never `O(n)` re-initialisation. When nodes exit
//! early, the engine does **not** rediscover frontiers from scratch:
//! [`BfsScratch::shrink_hop_sets`] filters the existing hop sets down to
//! the survivors' neighborhoods in place — membership-equal to a fresh
//! BFS from the survivors (survivors are a subset of the nodes the sets
//! were built for, so a node within `r` hops of the survivors is also
//! within `r` hops of the original seeds), but `O(visited)` with zero
//! allocation. The `*_by` variants take a neighbor closure instead of a
//! [`CsrMatrix`], so graph representations that are not CSR (e.g. the
//! streaming engine's adjacency lists) share the same scratch and
//! algorithms.

use crate::csr::CsrMatrix;

/// Reusable BFS workspace. One instance per engine; never shrinks.
#[derive(Debug, Default)]
pub struct BfsScratch {
    stamp: Vec<u64>,
    dist: Vec<u32>,
    /// `(node, distance)` discovery order of the most recent traversal.
    order: Vec<(u32, u32)>,
    current: u64,
}

impl BfsScratch {
    /// Workspace for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            dist: vec![0; n],
            order: Vec::new(),
            current: 0,
        }
    }

    /// Grows the workspace to cover `n` nodes (no-op when already large
    /// enough). Lets one scratch follow a growing graph.
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
    }

    /// All nodes within `hops` of `seeds` (including the seeds), in BFS
    /// discovery order. `hops == 0` returns the (deduplicated) seeds.
    pub fn nodes_within(&mut self, adj: &CsrMatrix, seeds: &[u32], hops: usize) -> Vec<u32> {
        self.current += 1;
        let stamp = self.current;
        let mut out: Vec<u32> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            if self.stamp[s as usize] != stamp {
                self.stamp[s as usize] = stamp;
                out.push(s);
            }
        }
        let mut level_start = 0usize;
        for _ in 0..hops {
            let level_end = out.len();
            if level_start == level_end {
                break; // frontier exhausted early
            }
            for idx in level_start..level_end {
                let u = out[idx];
                for (v, _) in adj.row_iter(u as usize) {
                    if self.stamp[v as usize] != stamp {
                        self.stamp[v as usize] = stamp;
                        out.push(v);
                    }
                }
            }
            level_start = level_end;
        }
        out
    }

    /// One BFS from `seeds` up to `max_hops`, recording each visited
    /// node's distance in the stamped `dist` array and the discovery
    /// order in `self.order`.
    fn bfs_distances<I>(
        &mut self,
        mut neighbors: impl FnMut(u32) -> I,
        seeds: &[u32],
        max_hops: usize,
    ) where
        I: Iterator<Item = u32>,
    {
        self.current += 1;
        let stamp = self.current;
        self.order.clear();
        for &s in seeds {
            if self.stamp[s as usize] != stamp {
                self.stamp[s as usize] = stamp;
                self.dist[s as usize] = 0;
                self.order.push((s, 0));
            }
        }
        let mut qi = 0usize;
        while qi < self.order.len() {
            let (u, d) = self.order[qi];
            qi += 1;
            if d as usize >= max_hops {
                continue;
            }
            for v in neighbors(u) {
                if self.stamp[v as usize] != stamp {
                    self.stamp[v as usize] = stamp;
                    self.dist[v as usize] = d + 1;
                    self.order.push((v, d + 1));
                }
            }
        }
    }

    /// Hop sets for Algorithm 1: `sets[l]` contains all nodes within
    /// `max_depth − l` hops of `seeds`, for `l = 0..=max_depth`. So
    /// `sets[0]` is the widest supporting frontier and
    /// `sets[max_depth]` is the batch itself. Sets are nested:
    /// `sets[l+1] ⊆ sets[l]`, and `N(sets[l+1]) ⊆ sets[l]`.
    pub fn hop_sets(&mut self, adj: &CsrMatrix, seeds: &[u32], max_depth: usize) -> Vec<Vec<u32>> {
        let mut sets = Vec::new();
        self.hop_sets_into(adj, seeds, max_depth, &mut sets);
        sets
    }

    /// [`Self::hop_sets`] writing into caller-owned buffers, reusing
    /// their allocations across batches.
    pub fn hop_sets_into(
        &mut self,
        adj: &CsrMatrix,
        seeds: &[u32],
        max_depth: usize,
        sets: &mut Vec<Vec<u32>>,
    ) {
        self.hop_sets_by_into(
            |u| adj.row_indices(u as usize).iter().copied(),
            seeds,
            max_depth,
            sets,
        );
    }

    /// [`Self::hop_sets_into`] over an arbitrary neighbor function —
    /// `neighbors(u)` yields the adjacency of `u`. Callers must have
    /// sized the scratch (see [`Self::ensure_capacity`]) to cover every
    /// reachable node id.
    pub fn hop_sets_by_into<I>(
        &mut self,
        neighbors: impl FnMut(u32) -> I,
        seeds: &[u32],
        max_depth: usize,
        sets: &mut Vec<Vec<u32>>,
    ) where
        I: Iterator<Item = u32>,
    {
        self.bfs_distances(neighbors, seeds, max_depth);
        sets.resize_with(max_depth + 1, Vec::new);
        for set in sets.iter_mut() {
            set.clear();
        }
        for &(node, dist) in &self.order {
            // Node at distance d belongs to sets[l] whenever
            // max_depth − l >= d, i.e. l <= max_depth − d.
            for set in sets.iter_mut().take(max_depth - dist as usize + 1) {
                set.push(node);
            }
        }
    }

    /// Incremental frontier shrink after early exits: filters existing
    /// hop sets down to the `survivors`' neighborhoods **in place**.
    ///
    /// `sets[j]` must currently hold all nodes within `max_hops − j`
    /// hops of a node set that *includes* `survivors` (the still-active
    /// nodes are always a subset of the nodes the sets were built for).
    /// After the call, `sets[j]` holds exactly the nodes within
    /// `max_hops − j` hops of `survivors` — the same membership a fresh
    /// [`Self::hop_sets`] from the survivors would produce (property
    /// tested in `tests/proptests.rs`), in a cost of one `O(visited)`
    /// BFS plus one linear pass over the sets, with no allocation.
    ///
    /// # Panics
    /// Panics if `sets.len() > max_hops + 1`.
    pub fn shrink_hop_sets(
        &mut self,
        adj: &CsrMatrix,
        survivors: &[u32],
        sets: &mut [Vec<u32>],
        max_hops: usize,
    ) {
        self.shrink_hop_sets_by(
            |u| adj.row_indices(u as usize).iter().copied(),
            survivors,
            sets,
            max_hops,
        );
    }

    /// [`Self::shrink_hop_sets`] over an arbitrary neighbor function.
    ///
    /// # Panics
    /// Panics if `sets.len() > max_hops + 1`.
    pub fn shrink_hop_sets_by<I>(
        &mut self,
        neighbors: impl FnMut(u32) -> I,
        survivors: &[u32],
        sets: &mut [Vec<u32>],
        max_hops: usize,
    ) where
        I: Iterator<Item = u32>,
    {
        assert!(
            sets.len() <= max_hops + 1,
            "{} hop sets cannot span {max_hops} hops",
            sets.len()
        );
        self.bfs_distances(neighbors, survivors, max_hops);
        let stamp = self.current;
        for (j, set) in sets.iter_mut().enumerate() {
            let budget = (max_hops - j) as u32;
            set.retain(|&v| self.stamp[v as usize] == stamp && self.dist[v as usize] <= budget);
        }
    }
}

/// Total nnz over the rows of `nodes` — the SpMM cost of propagating one
/// step for this frontier (in multiply-accumulates per feature column).
pub fn frontier_nnz(adj: &CsrMatrix, nodes: &[u32]) -> u64 {
    nodes.iter().map(|&u| adj.row_nnz(u as usize) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> CsrMatrix {
        CsrMatrix::undirected_adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn zero_hops_returns_seeds_dedup() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let got = bfs.nodes_within(&adj, &[2, 2, 4], 0);
        assert_eq!(got, vec![2, 4]);
    }

    #[test]
    fn hops_expand_along_path() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let mut got = bfs.nodes_within(&adj, &[0], 2);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        let mut all = bfs.nodes_within(&adj, &[0], 10);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        for _ in 0..10 {
            let got = bfs.nodes_within(&adj, &[2], 1);
            let mut sorted = got.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3]);
        }
    }

    #[test]
    fn default_scratch_grows_on_demand() {
        let adj = path5();
        let mut bfs = BfsScratch::default();
        bfs.ensure_capacity(5);
        let sets = bfs.hop_sets(&adj, &[0], 2);
        assert_eq!(sets.len(), 3);
        // Shrinking capacity requests are no-ops.
        bfs.ensure_capacity(2);
        let again = bfs.hop_sets(&adj, &[0], 2);
        assert_eq!(sets, again);
    }

    #[test]
    fn hop_sets_are_nested_and_correct() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let sets = bfs.hop_sets(&adj, &[0], 3);
        assert_eq!(sets.len(), 4);
        let as_sorted = |v: &Vec<u32>| {
            let mut s = v.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(as_sorted(&sets[3]), vec![0]); // batch itself
        assert_eq!(as_sorted(&sets[2]), vec![0, 1]);
        assert_eq!(as_sorted(&sets[1]), vec![0, 1, 2]);
        assert_eq!(as_sorted(&sets[0]), vec![0, 1, 2, 3]);
        // Nesting.
        for l in 0..3 {
            let outer: std::collections::HashSet<u32> = sets[l].iter().copied().collect();
            assert!(sets[l + 1].iter().all(|x| outer.contains(x)));
        }
    }

    #[test]
    fn hop_sets_match_nodes_within() {
        let adj =
            CsrMatrix::undirected_adjacency(7, &[(0, 1), (0, 2), (1, 3), (2, 4), (4, 5), (5, 6)])
                .unwrap();
        let mut bfs = BfsScratch::new(7);
        let sets = bfs.hop_sets(&adj, &[0, 6], 2);
        for (l, set) in sets.iter().enumerate() {
            let mut a = set.clone();
            a.sort_unstable();
            let mut b = bfs.nodes_within(&adj, &[0, 6], 2 - l);
            b.sort_unstable();
            assert_eq!(a, b, "hop set {l}");
        }
    }

    #[test]
    fn hop_sets_into_reuses_and_resizes_buffers() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let mut sets = vec![vec![9u32; 8]; 7]; // stale, oversized
        bfs.hop_sets_into(&adj, &[0], 2, &mut sets);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets, bfs.hop_sets(&adj, &[0], 2));
    }

    #[test]
    fn shrink_matches_recomputation_on_path() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        // Sets for batch {0, 4} at depth 3; drop node 4, keep survivor {0}.
        let mut sets = bfs.hop_sets(&adj, &[0, 4], 3);
        let survivors = [0u32];
        // Shrink the suffix sets[1..=3] (radii 2, 1, 0).
        bfs.shrink_hop_sets(&adj, &survivors, &mut sets[1..=3], 2);
        let fresh = bfs.hop_sets(&adj, &survivors, 2);
        for j in 0..=2 {
            let mut a = sets[1 + j].clone();
            a.sort_unstable();
            let mut b = fresh[j].clone();
            b.sort_unstable();
            assert_eq!(a, b, "level {j}");
        }
    }

    #[test]
    fn shrink_preserves_original_order() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let mut sets = bfs.hop_sets(&adj, &[4, 0], 2);
        let before = sets[1].clone();
        bfs.shrink_hop_sets(&adj, &[4, 0], &mut sets[1..=2], 1);
        // Survivors unchanged → sets unchanged, order included.
        assert_eq!(sets[1], before);
    }

    #[test]
    #[should_panic(expected = "cannot span")]
    fn shrink_rejects_overlong_suffix() {
        let adj = path5();
        let mut bfs = BfsScratch::new(5);
        let mut sets = bfs.hop_sets(&adj, &[0], 3);
        bfs.shrink_hop_sets(&adj, &[0], &mut sets[..], 2);
    }

    #[test]
    fn frontier_nnz_counts_degrees() {
        let adj = path5();
        assert_eq!(frontier_nnz(&adj, &[0, 2]), 1 + 2);
        assert_eq!(frontier_nnz(&adj, &[]), 0);
    }

    #[test]
    fn disconnected_seed_stops_expanding() {
        let adj = CsrMatrix::undirected_adjacency(4, &[(0, 1)]).unwrap();
        let mut bfs = BfsScratch::new(4);
        let got = bfs.nodes_within(&adj, &[3], 5);
        assert_eq!(got, vec![3]);
    }
}
