//! Synthetic attributed-graph generators.
//!
//! The paper evaluates on Flickr, Ogbn-arxiv and Ogbn-products; those
//! datasets are not available in this offline environment, so the proxies in
//! `nai-datasets` are produced by the degree-corrected stochastic block
//! model implemented here. The generator is designed to preserve the three
//! phenomena the NAI evaluation depends on (see DESIGN.md §3):
//!
//! 1. **power-law degrees** — high-degree nodes reach their stationary
//!    state after very few hops (Eq. 10), low-degree nodes need many, which
//!    is what makes *adaptive* depth profitable;
//! 2. **homophily** — edges fall inside a node's class with probability
//!    `homophily`, so propagation genuinely denoises features;
//! 3. **noisy class-correlated features** — raw features are weak,
//!    propagated features are strong, reproducing the accuracy-vs-depth
//!    curves of the paper.
//!
//! Beyond the SBM, the scenario harness (`nai-datasets::TopologySpec`,
//! `nai bench`) draws on three further *edge-list* generators covering
//! the topology axes the NAP policies are sensitive to:
//!
//! * [`rmat_edges`] — recursive-matrix (R-MAT) power-law graphs, the
//!   classic skewed-degree shape where depth-adaptive exit pays off;
//! * [`small_world_edges`] — Watts–Strogatz ring lattices with random
//!   rewiring: near-homogeneous degrees, the worst case for
//!   degree-driven depth policies;
//! * [`hub_star_edges`] — a few extreme hubs absorbing most edges, the
//!   hub-heavy read-traffic shape of online serving.
//!
//! [`attributed`] lifts any edge list into a full [`Graph`] with the
//! same balanced-label + noisy-centroid feature model the SBM uses.
//!
//! Also includes tiny deterministic topologies (path/star/complete/grid)
//! used across the workspace's tests.

use crate::csr::CsrMatrix;
use crate::graph::Graph;
use nai_linalg::init::sample_standard_normal;
use nai_linalg::DenseMatrix;
use rand::Rng;
use std::collections::HashSet;

/// Configuration of the degree-corrected SBM generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Number of classes/communities `c`.
    pub num_classes: usize,
    /// Target average degree `2m / n`.
    pub avg_degree: f64,
    /// Pareto exponent of the degree weights (2.0–3.0 gives realistic
    /// heavy tails; larger values approach homogeneous degrees).
    pub power_law_exponent: f64,
    /// Probability that an edge stays inside its source's community.
    pub homophily: f64,
    /// Feature dimensionality `f`.
    pub feature_dim: usize,
    /// Standard deviation of per-node feature noise. Centroids have unit
    /// scale, so values around 1.5–3.0 make raw features weak and
    /// propagated features strong.
    pub feature_noise: f32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_nodes: 1000,
            num_classes: 5,
            avg_degree: 8.0,
            power_law_exponent: 2.5,
            homophily: 0.8,
            feature_dim: 32,
            feature_noise: 2.0,
        }
    }
}

/// Weighted sampler over `0..weights.len()` via cumulative sums and binary
/// search. Deterministic given the RNG stream.
struct CumulativeSampler {
    cumsum: Vec<f64>,
}

impl CumulativeSampler {
    fn new(weights: impl Iterator<Item = f64>) -> Self {
        let mut cumsum = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w.max(0.0);
            cumsum.push(acc);
        }
        Self { cumsum }
    }

    fn total(&self) -> f64 {
        self.cumsum.last().copied().unwrap_or(0.0)
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x = rng.gen_range(0.0..self.total().max(f64::MIN_POSITIVE));
        match self
            .cumsum
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumsum.len() - 1),
            Err(i) => i.min(self.cumsum.len() - 1),
        }
    }
}

/// Generates a degree-corrected SBM graph per the config.
///
/// # Panics
/// Panics if `num_nodes < num_classes` or `num_classes == 0`.
pub fn generate<R: Rng>(cfg: &GeneratorConfig, rng: &mut R) -> Graph {
    assert!(cfg.num_classes > 0, "need at least one class");
    assert!(
        cfg.num_nodes >= cfg.num_classes,
        "need at least one node per class"
    );
    let n = cfg.num_nodes;
    let c = cfg.num_classes;

    let labels = balanced_labels(n, c, rng);

    // Power-law degree weights: w = u^(-1/(alpha-1)), capped to avoid a
    // single node absorbing the whole edge budget.
    let alpha = cfg.power_law_exponent.max(1.5);
    let cap = (n as f64).sqrt().max(4.0);
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            u.powf(-1.0 / (alpha - 1.0)).min(cap)
        })
        .collect();

    let global = CumulativeSampler::new(weights.iter().copied());
    // Per-class samplers over class member indices.
    let mut class_members: Vec<Vec<u32>> = vec![Vec::new(); c];
    for (i, &l) in labels.iter().enumerate() {
        class_members[l as usize].push(i as u32);
    }
    let class_samplers: Vec<CumulativeSampler> = class_members
        .iter()
        .map(|members| CumulativeSampler::new(members.iter().map(|&m| weights[m as usize])))
        .collect();

    let m_target = ((n as f64 * cfg.avg_degree) / 2.0).round() as usize;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m_target);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m_target * 2);
    let max_attempts = m_target.saturating_mul(30).max(1000);
    let mut attempts = 0usize;
    while edges.len() < m_target && attempts < max_attempts {
        attempts += 1;
        let u = global.sample(rng) as u32;
        let v = if rng.gen_bool(cfg.homophily.clamp(0.0, 1.0)) {
            let cls = labels[u as usize] as usize;
            class_members[cls][class_samplers[cls].sample(rng)]
        } else {
            global.sample(rng) as u32
        };
        if u == v {
            continue;
        }
        if seen.insert(edge_key(u, v)) {
            edges.push((u, v));
        }
    }

    let adj = CsrMatrix::undirected_adjacency(n, &edges).expect("endpoints in range");
    let features = class_features(&labels, c, cfg.feature_dim, cfg.feature_noise, rng);
    Graph::new(adj, features, labels, c).expect("generator invariants")
}

/// Balanced class assignment with a Fisher–Yates shuffle so class
/// blocks don't align with node ids. Per-class counts differ by at
/// most one.
pub fn balanced_labels<R: Rng>(n: usize, num_classes: usize, rng: &mut R) -> Vec<u32> {
    assert!(num_classes > 0, "need at least one class");
    let mut labels: Vec<u32> = (0..n).map(|i| (i % num_classes) as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        labels.swap(i, j);
    }
    labels
}

/// The SBM's feature model for arbitrary label assignments: unit-scale
/// class centroids + heavy per-node Gaussian noise, so raw features are
/// weak and propagated features strong.
pub fn class_features<R: Rng>(
    labels: &[u32],
    num_classes: usize,
    feature_dim: usize,
    feature_noise: f32,
    rng: &mut R,
) -> DenseMatrix {
    let centroids =
        DenseMatrix::from_fn(num_classes, feature_dim, |_, _| sample_standard_normal(rng));
    let mut features = DenseMatrix::zeros(labels.len(), feature_dim);
    for (i, &label) in labels.iter().enumerate() {
        let cls = label as usize;
        let row = features.row_mut(i);
        for (x, &mu) in row.iter_mut().zip(centroids.row(cls)) {
            *x = mu + feature_noise * sample_standard_normal(rng);
        }
    }
    features
}

/// Lifts an edge list into a full attributed [`Graph`]: undirected
/// simple-graph adjacency plus the same balanced-label / noisy-centroid
/// feature model as the SBM generator. Labels are drawn *after* the
/// topology, so they carry no structural signal (no homophily) — which
/// is exactly the heterogeneity axis the scenario matrix probes.
///
/// # Panics
/// Panics if `num_classes == 0` or any edge endpoint is `>= n`.
pub fn attributed<R: Rng>(
    n: usize,
    edges: &[(u32, u32)],
    num_classes: usize,
    feature_dim: usize,
    feature_noise: f32,
    rng: &mut R,
) -> Graph {
    let adj = CsrMatrix::undirected_adjacency(n, edges).expect("endpoints in range");
    let labels = balanced_labels(n, num_classes, rng);
    let features = class_features(&labels, num_classes, feature_dim, feature_noise, rng);
    Graph::new(adj, features, labels, num_classes).expect("attributed graph invariants")
}

/// Undirected-edge dedup key (order-independent).
fn edge_key(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    (lo as u64) << 32 | hi as u64
}

/// R-MAT (recursive matrix) power-law topology: each edge is drawn by
/// recursively descending into one of four adjacency-matrix quadrants
/// with probabilities `(a, b, c, 1−a−b−c)`. Skewed partitions
/// (`a ≈ 0.55+`) concentrate edges on low-id nodes, producing the
/// heavy-tailed degree distributions where node-adaptive propagation
/// wins the most. Self-loops and duplicates are rejected; the result
/// may fall short of `m_target` on dense/small configurations (the
/// attempt budget is capped like the SBM's).
///
/// # Panics
/// Panics if `n < 2` or the partition is not a sub-distribution.
pub fn rmat_edges<R: Rng>(
    n: usize,
    m_target: usize,
    partition: (f64, f64, f64),
    rng: &mut R,
) -> Vec<(u32, u32)> {
    assert!(n >= 2, "R-MAT needs at least two nodes");
    let (a, b, c) = partition;
    assert!(
        a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0,
        "R-MAT partition must satisfy a > 0, b,c ≥ 0, a+b+c < 1"
    );
    let bits = (n - 1).ilog2() + 1;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m_target);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m_target * 2);
    let max_attempts = m_target.saturating_mul(30).max(1000);
    let mut attempts = 0usize;
    while edges.len() < m_target && attempts < max_attempts {
        attempts += 1;
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..bits {
            let x: f64 = rng.gen_range(0.0..1.0);
            let (du, dv) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u as usize >= n || v as usize >= n || u == v {
            continue;
        }
        let (u, v) = (u as u32, v as u32);
        if seen.insert(edge_key(u, v)) {
            edges.push((u, v));
        }
    }
    edges
}

/// Watts–Strogatz small-world topology: a ring lattice where every node
/// connects to its `k_per_side` nearest neighbors on each side, with
/// each lattice edge rewired to a uniformly random endpoint with
/// probability `rewire`. Degrees are near-homogeneous — the opposite
/// end of the degree-skew axis from R-MAT/hub-star — so degree-driven
/// depth policies gain the least here. A rewire that would create a
/// self-loop or duplicate falls back to the lattice edge (dropped only
/// if that is itself a duplicate), keeping the edge count ≈
/// `n · k_per_side`.
///
/// # Panics
/// Panics if `n < 3` or `k_per_side == 0`.
pub fn small_world_edges<R: Rng>(
    n: usize,
    k_per_side: usize,
    rewire: f64,
    rng: &mut R,
) -> Vec<(u32, u32)> {
    assert!(n >= 3, "small-world needs at least three nodes");
    assert!(k_per_side >= 1, "k_per_side must be ≥ 1");
    let p = rewire.clamp(0.0, 1.0);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k_per_side);
    let mut seen: HashSet<u64> = HashSet::with_capacity(n * k_per_side * 2);
    for i in 0..n {
        for j in 1..=k_per_side.min(n / 2) {
            let u = i as u32;
            let mut v = ((i + j) % n) as u32;
            if rng.gen_bool(p) {
                for _ in 0..8 {
                    let cand = rng.gen_range(0..n) as u32;
                    if cand != u && !seen.contains(&edge_key(u, cand)) {
                        v = cand;
                        break;
                    }
                }
            }
            if u != v && seen.insert(edge_key(u, v)) {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Hub-star topology: nodes `0..hubs` are hubs; every leaf attaches to
/// one hub drawn with weight `∝ 1/(h+1)` (hub 0 hottest — so
/// Zipf-skewed *traffic* over node ids automatically lands on the
/// hottest *structure*), hubs form a ring for connectivity, and the
/// remaining edge budget is filled with random leaf→hub attachments.
/// This is the most extreme degree-skew in the scenario matrix: hub
/// stationary states are reached in one hop while leaves need many.
///
/// # Panics
/// Panics if `hubs == 0` or `hubs >= n`.
pub fn hub_star_edges<R: Rng>(
    n: usize,
    hubs: usize,
    m_target: usize,
    rng: &mut R,
) -> Vec<(u32, u32)> {
    assert!(hubs >= 1, "need at least one hub");
    assert!(hubs < n, "need at least one leaf");
    let hub_weights = CumulativeSampler::new((0..hubs).map(|h| 1.0 / (h + 1) as f64));
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m_target);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m_target * 2);
    // Hub ring: with every leaf attached below, the graph is connected.
    for h in 1..hubs as u32 {
        if seen.insert(edge_key(h - 1, h)) {
            edges.push((h - 1, h));
        }
    }
    for leaf in hubs as u32..n as u32 {
        let hub = hub_weights.sample(rng) as u32;
        if seen.insert(edge_key(leaf, hub)) {
            edges.push((leaf, hub));
        }
    }
    let max_attempts = m_target.saturating_mul(30).max(1000);
    let mut attempts = 0usize;
    while edges.len() < m_target && attempts < max_attempts {
        attempts += 1;
        let leaf = rng.gen_range(hubs..n) as u32;
        let hub = hub_weights.sample(rng) as u32;
        if seen.insert(edge_key(leaf, hub)) {
            edges.push((leaf, hub));
        }
    }
    edges
}

/// Path graph 0–1–⋯–(n−1) with the given feature dim (features = node id
/// one-dim ramp broadcast, labels alternate 0/1).
pub fn path_graph(n: usize, feature_dim: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    deterministic(n, feature_dim, &edges)
}

/// Star graph: node 0 is the hub.
pub fn star_graph(n: usize, feature_dim: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    deterministic(n, feature_dim, &edges)
}

/// Complete graph on `n` nodes.
pub fn complete_graph(n: usize, feature_dim: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
        .collect();
    deterministic(n, feature_dim, &edges)
}

/// `rows × cols` grid graph.
pub fn grid_graph(rows: usize, cols: usize, feature_dim: usize) -> Graph {
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    deterministic(rows * cols, feature_dim, &edges)
}

fn deterministic(n: usize, feature_dim: usize, edges: &[(u32, u32)]) -> Graph {
    let adj = CsrMatrix::undirected_adjacency(n, edges).expect("static edges in range");
    let features = DenseMatrix::from_fn(n, feature_dim.max(1), |r, c| {
        (r as f32 + 1.0) * 0.1 + c as f32 * 0.01
    });
    let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
    Graph::new(adj, features, labels, 2).expect("deterministic graph invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_hits_degree_target_roughly() {
        let cfg = GeneratorConfig {
            num_nodes: 2000,
            avg_degree: 10.0,
            ..Default::default()
        };
        let g = generate(&cfg, &mut StdRng::seed_from_u64(11));
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (avg - 10.0).abs() < 1.5,
            "avg degree {avg} far from target 10"
        );
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::default();
        let a = generate(&cfg, &mut StdRng::seed_from_u64(5));
        let b = generate(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.adj.indices(), b.adj.indices());
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        let c = generate(&cfg, &mut StdRng::seed_from_u64(6));
        assert_ne!(a.adj.indices(), c.adj.indices());
    }

    #[test]
    fn generator_produces_heavy_tail() {
        let cfg = GeneratorConfig {
            num_nodes: 3000,
            avg_degree: 10.0,
            power_law_exponent: 2.2,
            ..Default::default()
        };
        let g = generate(&cfg, &mut StdRng::seed_from_u64(12));
        let mut degs = g.adj.degrees();
        degs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mean = degs.iter().sum::<f32>() / degs.len() as f32;
        // Heavy tail: max degree several times the mean.
        assert!(degs[0] > 4.0 * mean, "max {} vs mean {mean}", degs[0]);
    }

    #[test]
    fn generator_is_homophilous() {
        let cfg = GeneratorConfig {
            num_nodes: 2000,
            homophily: 0.9,
            ..Default::default()
        };
        let g = generate(&cfg, &mut StdRng::seed_from_u64(13));
        let mut intra = 0usize;
        let mut total = 0usize;
        for i in 0..g.num_nodes() {
            for (j, _) in g.adj.row_iter(i) {
                total += 1;
                if g.labels[i] == g.labels[j as usize] {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra-class edge fraction {frac}");
    }

    #[test]
    fn class_histogram_is_balanced() {
        let cfg = GeneratorConfig {
            num_nodes: 1000,
            num_classes: 4,
            ..Default::default()
        };
        let g = generate(&cfg, &mut StdRng::seed_from_u64(14));
        let h = g.class_histogram();
        assert_eq!(h.iter().sum::<usize>(), 1000);
        assert!(h.iter().all(|&c| c == 250));
    }

    #[test]
    fn deterministic_topologies() {
        let p = path_graph(5, 3);
        assert_eq!(p.num_edges(), 4);
        let s = star_graph(5, 3);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.adj.row_nnz(0), 4);
        let k = complete_graph(5, 2);
        assert_eq!(k.num_edges(), 10);
        let g = grid_graph(3, 4, 2);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn rmat_is_skewed_and_deduped() {
        let mut rng = StdRng::seed_from_u64(21);
        let edges = rmat_edges(1024, 4096, (0.57, 0.19, 0.19), &mut rng);
        assert!(edges.len() > 3500, "budget roughly met: {}", edges.len());
        let mut seen = HashSet::new();
        for &(u, v) in &edges {
            assert!(u != v && (u as usize) < 1024 && (v as usize) < 1024);
            assert!(seen.insert(edge_key(u, v)), "duplicate ({u},{v})");
        }
        // Degree skew: the heaviest node far exceeds the mean.
        let mut deg = vec![0usize; 1024];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mean = 2.0 * edges.len() as f64 / 1024.0;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > 4.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn small_world_is_near_homogeneous() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = 500;
        let edges = small_world_edges(n, 3, 0.1, &mut rng);
        assert!(edges.len() > n * 3 * 9 / 10, "lattice mostly intact");
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            assert!(u != v);
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        // Every node keeps close to the lattice degree 2k.
        assert!(deg.iter().all(|&d| (3..=14).contains(&d)), "{deg:?}");
    }

    #[test]
    fn hub_star_concentrates_on_hubs() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 400;
        let hubs = 4;
        let edges = hub_star_edges(n, hubs, 900, &mut rng);
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            assert!(u != v);
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        // Every hub's degree dwarfs the mean (leaves hold ≈1–3 edges).
        let mean = 2.0 * edges.len() as f64 / n as f64;
        assert!(
            deg[..hubs].iter().all(|&d| d as f64 > 5.0 * mean),
            "hub degrees {:?} vs mean {mean}",
            &deg[..hubs]
        );
        // Hub 0 is the hottest (harmonic attachment weights).
        assert!(deg[0] > deg[hubs - 1]);
        // Every leaf is attached.
        assert!(deg[hubs..].iter().all(|&d| d >= 1));
    }

    #[test]
    fn attributed_lifts_edges_into_graphs_deterministically() {
        let edges = small_world_edges(120, 2, 0.2, &mut StdRng::seed_from_u64(24));
        let a = attributed(120, &edges, 4, 6, 2.0, &mut StdRng::seed_from_u64(25));
        let b = attributed(120, &edges, 4, 6, 2.0, &mut StdRng::seed_from_u64(25));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        assert_eq!(a.num_classes, 4);
        let h = a.class_histogram();
        assert_eq!(h.iter().sum::<usize>(), 120);
        assert!(h.iter().all(|&c| c == 30), "balanced labels: {h:?}");
    }

    #[test]
    fn cumulative_sampler_respects_weights() {
        let s = CumulativeSampler::new([1.0, 0.0, 9.0].into_iter());
        let mut rng = StdRng::seed_from_u64(15);
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }
}
