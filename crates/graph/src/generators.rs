//! Synthetic attributed-graph generators.
//!
//! The paper evaluates on Flickr, Ogbn-arxiv and Ogbn-products; those
//! datasets are not available in this offline environment, so the proxies in
//! `nai-datasets` are produced by the degree-corrected stochastic block
//! model implemented here. The generator is designed to preserve the three
//! phenomena the NAI evaluation depends on (see DESIGN.md §3):
//!
//! 1. **power-law degrees** — high-degree nodes reach their stationary
//!    state after very few hops (Eq. 10), low-degree nodes need many, which
//!    is what makes *adaptive* depth profitable;
//! 2. **homophily** — edges fall inside a node's class with probability
//!    `homophily`, so propagation genuinely denoises features;
//! 3. **noisy class-correlated features** — raw features are weak,
//!    propagated features are strong, reproducing the accuracy-vs-depth
//!    curves of the paper.
//!
//! Also includes tiny deterministic topologies (path/star/complete/grid)
//! used across the workspace's tests.

use crate::csr::CsrMatrix;
use crate::graph::Graph;
use nai_linalg::init::sample_standard_normal;
use nai_linalg::DenseMatrix;
use rand::Rng;
use std::collections::HashSet;

/// Configuration of the degree-corrected SBM generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Number of classes/communities `c`.
    pub num_classes: usize,
    /// Target average degree `2m / n`.
    pub avg_degree: f64,
    /// Pareto exponent of the degree weights (2.0–3.0 gives realistic
    /// heavy tails; larger values approach homogeneous degrees).
    pub power_law_exponent: f64,
    /// Probability that an edge stays inside its source's community.
    pub homophily: f64,
    /// Feature dimensionality `f`.
    pub feature_dim: usize,
    /// Standard deviation of per-node feature noise. Centroids have unit
    /// scale, so values around 1.5–3.0 make raw features weak and
    /// propagated features strong.
    pub feature_noise: f32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_nodes: 1000,
            num_classes: 5,
            avg_degree: 8.0,
            power_law_exponent: 2.5,
            homophily: 0.8,
            feature_dim: 32,
            feature_noise: 2.0,
        }
    }
}

/// Weighted sampler over `0..weights.len()` via cumulative sums and binary
/// search. Deterministic given the RNG stream.
struct CumulativeSampler {
    cumsum: Vec<f64>,
}

impl CumulativeSampler {
    fn new(weights: impl Iterator<Item = f64>) -> Self {
        let mut cumsum = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w.max(0.0);
            cumsum.push(acc);
        }
        Self { cumsum }
    }

    fn total(&self) -> f64 {
        self.cumsum.last().copied().unwrap_or(0.0)
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x = rng.gen_range(0.0..self.total().max(f64::MIN_POSITIVE));
        match self
            .cumsum
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumsum.len() - 1),
            Err(i) => i.min(self.cumsum.len() - 1),
        }
    }
}

/// Generates a degree-corrected SBM graph per the config.
///
/// # Panics
/// Panics if `num_nodes < num_classes` or `num_classes == 0`.
pub fn generate<R: Rng>(cfg: &GeneratorConfig, rng: &mut R) -> Graph {
    assert!(cfg.num_classes > 0, "need at least one class");
    assert!(
        cfg.num_nodes >= cfg.num_classes,
        "need at least one node per class"
    );
    let n = cfg.num_nodes;
    let c = cfg.num_classes;

    // Class assignment: balanced with random remainder.
    let mut labels: Vec<u32> = (0..n).map(|i| (i % c) as u32).collect();
    // Shuffle so class blocks don't align with node ids.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        labels.swap(i, j);
    }

    // Power-law degree weights: w = u^(-1/(alpha-1)), capped to avoid a
    // single node absorbing the whole edge budget.
    let alpha = cfg.power_law_exponent.max(1.5);
    let cap = (n as f64).sqrt().max(4.0);
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            u.powf(-1.0 / (alpha - 1.0)).min(cap)
        })
        .collect();

    let global = CumulativeSampler::new(weights.iter().copied());
    // Per-class samplers over class member indices.
    let mut class_members: Vec<Vec<u32>> = vec![Vec::new(); c];
    for (i, &l) in labels.iter().enumerate() {
        class_members[l as usize].push(i as u32);
    }
    let class_samplers: Vec<CumulativeSampler> = class_members
        .iter()
        .map(|members| CumulativeSampler::new(members.iter().map(|&m| weights[m as usize])))
        .collect();

    let m_target = ((n as f64 * cfg.avg_degree) / 2.0).round() as usize;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m_target);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m_target * 2);
    let key = |a: u32, b: u32| -> u64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        (lo as u64) << 32 | hi as u64
    };
    let max_attempts = m_target.saturating_mul(30).max(1000);
    let mut attempts = 0usize;
    while edges.len() < m_target && attempts < max_attempts {
        attempts += 1;
        let u = global.sample(rng) as u32;
        let v = if rng.gen_bool(cfg.homophily.clamp(0.0, 1.0)) {
            let cls = labels[u as usize] as usize;
            class_members[cls][class_samplers[cls].sample(rng)]
        } else {
            global.sample(rng) as u32
        };
        if u == v {
            continue;
        }
        if seen.insert(key(u, v)) {
            edges.push((u, v));
        }
    }

    let adj = CsrMatrix::undirected_adjacency(n, &edges).expect("endpoints in range");

    // Features: unit-scale class centroids + heavy per-node noise.
    let centroids = DenseMatrix::from_fn(c, cfg.feature_dim, |_, _| sample_standard_normal(rng));
    let mut features = DenseMatrix::zeros(n, cfg.feature_dim);
    for (i, &label) in labels.iter().enumerate() {
        let cls = label as usize;
        let row = features.row_mut(i);
        for (x, &mu) in row.iter_mut().zip(centroids.row(cls)) {
            *x = mu + cfg.feature_noise * sample_standard_normal(rng);
        }
    }

    Graph::new(adj, features, labels, c).expect("generator invariants")
}

/// Path graph 0–1–⋯–(n−1) with the given feature dim (features = node id
/// one-dim ramp broadcast, labels alternate 0/1).
pub fn path_graph(n: usize, feature_dim: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    deterministic(n, feature_dim, &edges)
}

/// Star graph: node 0 is the hub.
pub fn star_graph(n: usize, feature_dim: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    deterministic(n, feature_dim, &edges)
}

/// Complete graph on `n` nodes.
pub fn complete_graph(n: usize, feature_dim: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
        .collect();
    deterministic(n, feature_dim, &edges)
}

/// `rows × cols` grid graph.
pub fn grid_graph(rows: usize, cols: usize, feature_dim: usize) -> Graph {
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    deterministic(rows * cols, feature_dim, &edges)
}

fn deterministic(n: usize, feature_dim: usize, edges: &[(u32, u32)]) -> Graph {
    let adj = CsrMatrix::undirected_adjacency(n, edges).expect("static edges in range");
    let features = DenseMatrix::from_fn(n, feature_dim.max(1), |r, c| {
        (r as f32 + 1.0) * 0.1 + c as f32 * 0.01
    });
    let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
    Graph::new(adj, features, labels, 2).expect("deterministic graph invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_hits_degree_target_roughly() {
        let cfg = GeneratorConfig {
            num_nodes: 2000,
            avg_degree: 10.0,
            ..Default::default()
        };
        let g = generate(&cfg, &mut StdRng::seed_from_u64(11));
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (avg - 10.0).abs() < 1.5,
            "avg degree {avg} far from target 10"
        );
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::default();
        let a = generate(&cfg, &mut StdRng::seed_from_u64(5));
        let b = generate(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.adj.indices(), b.adj.indices());
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        let c = generate(&cfg, &mut StdRng::seed_from_u64(6));
        assert_ne!(a.adj.indices(), c.adj.indices());
    }

    #[test]
    fn generator_produces_heavy_tail() {
        let cfg = GeneratorConfig {
            num_nodes: 3000,
            avg_degree: 10.0,
            power_law_exponent: 2.2,
            ..Default::default()
        };
        let g = generate(&cfg, &mut StdRng::seed_from_u64(12));
        let mut degs = g.adj.degrees();
        degs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mean = degs.iter().sum::<f32>() / degs.len() as f32;
        // Heavy tail: max degree several times the mean.
        assert!(degs[0] > 4.0 * mean, "max {} vs mean {mean}", degs[0]);
    }

    #[test]
    fn generator_is_homophilous() {
        let cfg = GeneratorConfig {
            num_nodes: 2000,
            homophily: 0.9,
            ..Default::default()
        };
        let g = generate(&cfg, &mut StdRng::seed_from_u64(13));
        let mut intra = 0usize;
        let mut total = 0usize;
        for i in 0..g.num_nodes() {
            for (j, _) in g.adj.row_iter(i) {
                total += 1;
                if g.labels[i] == g.labels[j as usize] {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra-class edge fraction {frac}");
    }

    #[test]
    fn class_histogram_is_balanced() {
        let cfg = GeneratorConfig {
            num_nodes: 1000,
            num_classes: 4,
            ..Default::default()
        };
        let g = generate(&cfg, &mut StdRng::seed_from_u64(14));
        let h = g.class_histogram();
        assert_eq!(h.iter().sum::<usize>(), 1000);
        assert!(h.iter().all(|&c| c == 250));
    }

    #[test]
    fn deterministic_topologies() {
        let p = path_graph(5, 3);
        assert_eq!(p.num_edges(), 4);
        let s = star_graph(5, 3);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.adj.row_nnz(0), 4);
        let k = complete_graph(5, 2);
        assert_eq!(k.num_edges(), 10);
        let g = grid_graph(3, 4, 2);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn cumulative_sampler_respects_weights() {
        let s = CumulativeSampler::new([1.0, 0.0, 9.0].into_iter());
        let mut rng = StdRng::seed_from_u64(15);
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }
}
