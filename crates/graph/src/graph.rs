//! The attributed graph bundle: adjacency + features + labels.

use crate::csr::CsrMatrix;
use crate::{GraphError, Result};
use nai_linalg::DenseMatrix;

/// An undirected attributed graph for node classification.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Simple undirected adjacency (unit weights, no self-loops).
    pub adj: CsrMatrix,
    /// Node feature matrix, `n × f`.
    pub features: DenseMatrix,
    /// Node class labels in `0..num_classes`.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Graph {
    /// Builds a graph, validating array consistency.
    ///
    /// # Errors
    /// Returns [`GraphError::InconsistentArrays`] when features/labels do
    /// not match the adjacency node count or a label exceeds
    /// `num_classes`.
    pub fn new(
        adj: CsrMatrix,
        features: DenseMatrix,
        labels: Vec<u32>,
        num_classes: usize,
    ) -> Result<Self> {
        let n = adj.n();
        if features.rows() != n {
            return Err(GraphError::InconsistentArrays(format!(
                "features have {} rows, graph has {n} nodes",
                features.rows()
            )));
        }
        if labels.len() != n {
            return Err(GraphError::InconsistentArrays(format!(
                "{} labels for {n} nodes",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l as usize >= num_classes) {
            return Err(GraphError::InconsistentArrays(format!(
                "label {bad} out of range (num_classes = {num_classes})"
            )));
        }
        Ok(Self {
            adj,
            features,
            labels,
            num_classes,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.n()
    }

    /// Number of undirected edges `m` (each stored twice in CSR).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// Feature dimensionality `f`.
    #[inline]
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// The `2m + n` normalizer of the stationary-state formula (Eq. 7):
    /// the total tilde-degree mass `Σ_i (d_i + 1)`.
    pub fn total_tilde_degree(&self) -> f64 {
        (self.adj.nnz() + self.num_nodes()) as f64
    }

    /// Induced subgraph on `nodes` (global ids, unique). Returns the
    /// subgraph plus the node mapping (`mapping[local] = global`). Used to
    /// build the training graph of the inductive protocol: test nodes and
    /// every edge touching them are dropped.
    pub fn induced_subgraph(&self, nodes: &[u32]) -> Result<(Graph, Vec<u32>)> {
        for &g in nodes {
            if g as usize >= self.num_nodes() {
                return Err(GraphError::NodeOutOfRange {
                    node: g,
                    num_nodes: self.num_nodes(),
                });
            }
        }
        let sub_adj = self.adj.induced(nodes);
        let idx: Vec<usize> = nodes.iter().map(|&g| g as usize).collect();
        let features = self
            .features
            .gather_rows(&idx)
            .expect("indices validated above");
        let labels: Vec<u32> = idx.iter().map(|&g| self.labels[g]).collect();
        Ok((
            Graph {
                adj: sub_adj,
                features,
                labels,
                num_classes: self.num_classes,
            },
            nodes.to_vec(),
        ))
    }

    /// Per-class node counts (diagnostics and generator tests).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        let adj = CsrMatrix::undirected_adjacency(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let feats = DenseMatrix::from_fn(4, 2, |r, c| (r + c) as f32);
        Graph::new(adj, feats, vec![0, 1, 0, 1], 2).unwrap()
    }

    #[test]
    fn counts_are_consistent() {
        let g = toy();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.feature_dim(), 2);
        assert_eq!(g.total_tilde_degree(), (2 * 3 + 4) as f64);
    }

    #[test]
    fn rejects_bad_feature_rows() {
        let adj = CsrMatrix::undirected_adjacency(3, &[]).unwrap();
        let feats = DenseMatrix::zeros(2, 2);
        assert!(Graph::new(adj, feats, vec![0, 0, 0], 1).is_err());
    }

    #[test]
    fn rejects_out_of_range_label() {
        let adj = CsrMatrix::undirected_adjacency(2, &[]).unwrap();
        let feats = DenseMatrix::zeros(2, 1);
        assert!(Graph::new(adj, feats, vec![0, 5], 2).is_err());
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = toy();
        let (sub, mapping) = g.induced_subgraph(&[1, 2]).unwrap();
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1); // only (1,2) survives
        assert_eq!(mapping, vec![1, 2]);
        assert_eq!(sub.labels, vec![1, 0]);
        assert_eq!(sub.features.row(0), g.features.row(1));
    }

    #[test]
    fn induced_subgraph_rejects_bad_node() {
        let g = toy();
        assert!(g.induced_subgraph(&[9]).is_err());
    }

    #[test]
    fn class_histogram_sums_to_n() {
        let g = toy();
        assert_eq!(g.class_histogram(), vec![2, 2]);
    }
}
