//! Streaming spam detection: replaying the inductive test set as a live
//! arrival stream.
//!
//! Fraud/spam systems never see the deployment graph frozen: accounts
//! arrive one by one, each bringing edges to accounts that are already
//! known — and sometimes edges to accounts that have not arrived yet,
//! which materialize later. This example replays the Ogbn-arxiv proxy's
//! unseen test nodes through [`nai::stream::StreamingEngine`] exactly that
//! way:
//!
//! 1. train the NAI pipeline on the observed (train ∪ val) subgraph;
//! 2. checkpoint the model and deploy it over the observed subgraph as a
//!    dynamic graph;
//! 3. stream every test node in: edges to already-present nodes attach at
//!    ingest time, edges to future arrivals attach when the later
//!    endpoint shows up;
//! 4. flush micro-batches and compare streaming predictions against the
//!    ground-truth labels, reporting accuracy plus the latency
//!    percentiles a serving system would monitor.
//!
//! ```sh
//! cargo run --release --example streaming_spam
//! ```

use nai::datasets::{load, DatasetId, Scale};
use nai::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let ds = load(DatasetId::ArxivProxy, Scale::Test);
    let graph = &ds.graph;
    println!(
        "account graph: {} nodes, {} edges; {} unseen accounts to stream",
        graph.num_nodes(),
        graph.num_edges(),
        ds.split.test.len()
    );

    // 1. Train on the observed view (the pipeline does this internally).
    let k = 3;
    let cfg = PipelineConfig {
        k,
        hidden: vec![32],
        epochs: 50,
        gate_epochs: 10,
        ..PipelineConfig::default()
    };
    let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(graph, &ds.split, false);

    // 2. Checkpoint → streaming deployment over the observed subgraph.
    let observed = ds.split.observed();
    let (observed_graph, local_of_global) = graph
        .induced_subgraph(&observed)
        .expect("observed view is valid");
    let ckpt = ModelCheckpoint::from_engine(&trained.engine, 0.5);
    let mut engine =
        StreamingEngine::from_checkpoint(&ckpt, DynamicGraph::from_graph(&observed_graph));

    // Global node id → id inside the dynamic graph (observed nodes keep
    // their induced-subgraph ids; arrivals get fresh ids at ingest).
    let mut stream_id: Vec<Option<u32>> = vec![None; graph.num_nodes()];
    for (&global, local) in observed.iter().zip(0u32..) {
        stream_id[global as usize] = Some(local);
    }
    let _ = local_of_global;

    // 3. Stream test nodes in random arrival order.
    let mut arrival_order = ds.split.test.clone();
    arrival_order.shuffle(&mut StdRng::seed_from_u64(99));
    let nap = InferenceConfig {
        batch_size: 25,
        ..InferenceConfig::distance(1.5, 1, k)
    };
    let mut truth = Vec::new();
    let mut correct = 0usize;
    let mut deferred_edges = 0usize;
    for &global in &arrival_order {
        // Edges whose other endpoint is already in the dynamic graph.
        let (mut now, mut later) = (Vec::new(), 0usize);
        for &nb in graph.adj.row_indices(global as usize) {
            match stream_id[nb as usize] {
                Some(local) => now.push(local),
                None => later += 1,
            }
        }
        deferred_edges += later;
        let id = engine.ingest(graph.features.row(global as usize), &now);
        stream_id[global as usize] = Some(id);
        // Late edges from earlier arrivals to this node: they exist in the
        // full graph, so attach them now that both endpoints are present.
        for &nb in graph.adj.row_indices(global as usize) {
            if let Some(other) = stream_id[nb as usize] {
                if other != id && !engine.graph().neighbors(id).contains(&other) {
                    engine.observe_edge(id, other);
                }
            }
        }
        truth.push(graph.labels[global as usize]);
        if engine.pending().len() >= nap.batch_size {
            engine.flush(&nap);
        }
    }
    engine.flush(&nap);

    // Re-score all streamed nodes at once for the accuracy report (their
    // predictions at arrival time were already recorded in the stats; the
    // graph has since grown, so this is the "batch audit" pass).
    let streamed: Vec<u32> = arrival_order
        .iter()
        .map(|&g| stream_id[g as usize].expect("streamed"))
        .collect();
    let audit = engine.infer_nodes(&streamed, &nap);
    for ((pred, _), &y) in audit.iter().zip(&truth) {
        if *pred == y as usize {
            correct += 1;
        }
    }

    // 4. Serving report.
    let s = engine.stats();
    println!(
        "\nstreamed {} arrivals ({} edges deferred to later arrivals)",
        arrival_order.len(),
        deferred_edges
    );
    println!(
        "streaming accuracy {:.3} (vs {:.3} for the static engine on the frozen graph)",
        correct as f64 / truth.len() as f64,
        trained
            .engine
            .infer(&ds.split.test, &graph.labels, &nap)
            .report
            .accuracy
    );
    println!(
        "latency: p50 {:?} | p95 {:?} | p99 {:?} | max {:?}",
        s.p50(),
        s.p95(),
        s.p99(),
        s.max()
    );
    println!(
        "mean personalized depth {:.2} of k = {k}; total propagation+NAP+classifier \
         work {:.1}M MACs",
        s.mean_depth(),
        engine.macs_total() as f64 / 1e6
    );
}
