//! 3D point-cloud semantic segmentation: NAI on a k-NN graph.
//!
//! The paper's introduction motivates real-time GNN inference with
//! point-cloud perception in automated driving (Point-GNN-style object
//! pipelines). This example builds the graph from scratch — sampled 3D
//! points in class-shaped clusters, connected by k-nearest-neighbor
//! edges — exercising the low-level `Graph`/`CsrMatrix` API rather than
//! the dataset registry, then compares fixed-depth inference against the
//! three NAP policies with per-class F1 (segmentation cares about rare
//! parts, not just overall accuracy).
//!
//! ```sh
//! cargo run --release --example point_cloud
//! ```

use nai::graph::CsrMatrix;
use nai::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `n` points in `c` Gaussian clusters ("object parts") and
/// returns (positions, labels).
fn sample_cloud(n: usize, c: usize, rng: &mut StdRng) -> (Vec<[f32; 3]>, Vec<u32>) {
    let centers: Vec<[f32; 3]> = (0..c)
        .map(|_| {
            [
                rng.gen_range(-4.0f32..4.0),
                rng.gen_range(-4.0f32..4.0),
                rng.gen_range(-1.0f32..1.0),
            ]
        })
        .collect();
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let cls = i % c;
        let ctr = centers[cls];
        points.push([
            ctr[0] + rng.gen_range(-1.0f32..1.0),
            ctr[1] + rng.gen_range(-1.0f32..1.0),
            ctr[2] + rng.gen_range(-0.5f32..0.5),
        ]);
        labels.push(cls as u32);
    }
    (points, labels)
}

/// Exact k-NN edges by Euclidean distance (quadratic scan — fine at demo
/// scale; real perception stacks use spatial indices).
fn knn_edges(points: &[[f32; 3]], k: usize) -> Vec<(u32, u32)> {
    let n = points.len();
    let mut edges = Vec::with_capacity(n * k);
    for i in 0..n {
        let mut dist: Vec<(f32, u32)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let d: f32 = points[i]
                    .iter()
                    .zip(&points[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d, j as u32)
            })
            .collect();
        dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(_, j) in dist.iter().take(k) {
            let (a, b) = (i as u32, j);
            edges.push(if a < b { (a, b) } else { (b, a) });
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let (n, classes, knn) = (900, 5, 8);
    let (points, labels) = sample_cloud(n, classes, &mut rng);
    let adj =
        CsrMatrix::undirected_adjacency(n, &knn_edges(&points, knn)).expect("knn edges are valid");

    // Per-point descriptor: xyz + 5 noisy intensity channels correlated
    // with the part label (lidar return intensity, normals, ...).
    let f = 8;
    let features = DenseMatrix::from_fn(n, f, |i, j| match j {
        0..=2 => points[i][j],
        _ => labels[i] as f32 * 0.7 + rng.gen_range(-1.2f32..1.2),
    });
    let graph = Graph::new(adj, features, labels, classes).expect("consistent graph");
    println!(
        "point cloud: {} points, {} knn edges, {} part classes",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes
    );

    let split = InductiveSplit::random(n, 0.5, 0.2, &mut StdRng::seed_from_u64(7));
    let k = 4;
    let cfg = PipelineConfig {
        k,
        hidden: vec![32],
        epochs: 60,
        gate_epochs: 12,
        ..PipelineConfig::default()
    };
    let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&graph, &split, true);

    // NAP_u consumes T_s through the Eq. (10) spectral bound, which is
    // loose when λ₂ ≈ 1 (k-NN graphs are well connected) — its useful
    // threshold range sits far above NAP_d's distance scale.
    let policies = [
        ("fixed k", InferenceConfig::fixed(k)),
        ("NAP_d", InferenceConfig::distance(0.6, 1, k)),
        ("NAP_g", InferenceConfig::gate(1, k)),
        ("NAP_u", InferenceConfig::upper_bound(30.0, 1, k)),
    ];
    println!(
        "\n{:>8} | {:>6} | {:>8} | {:>10} | per-class F1",
        "policy", "acc", "macro-F1", "mean depth"
    );
    for (name, cfg) in policies {
        let res = trained.engine.infer(&split.test, &graph.labels, &cfg);
        let truth: Vec<u32> = split
            .test
            .iter()
            .map(|&v| graph.labels[v as usize])
            .collect();
        let cm = ConfusionMatrix::from_predictions(&res.predictions, &truth, classes);
        let per_class: Vec<String> = (0..classes).map(|c| format!("{:.2}", cm.f1(c))).collect();
        println!(
            "{name:>8} | {:.3}  | {:.3}    | {:>10.2} | [{}]",
            res.report.accuracy,
            cm.macro_f1(),
            res.report.mean_depth(),
            per_class.join(", ")
        );
    }
    println!(
        "\nadaptive policies keep macro-F1 close to fixed-depth while \
         cutting the mean propagation depth — the latency lever for a \
         perception loop."
    );
}
