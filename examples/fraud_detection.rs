//! Fraud-detection scenario: millisecond-budget streaming inference.
//!
//! The paper's introduction motivates NAI with fraud/spam detection:
//! classify *newly arriving* accounts on a million-scale interaction graph
//! within a strict latency budget. This example simulates the serving
//! loop: unseen nodes arrive in small batches, and the deployment must
//! answer within a per-batch budget, tuning `T_s` on the validation set to
//! the tightest setting that fits.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use nai::datasets::{load, DatasetId, Scale};
use nai::prelude::*;
use std::time::Duration;

fn main() {
    // Products proxy: the densest graph, 90% unseen nodes — the closest
    // analogue of a transaction graph where almost everything is new.
    let ds = load(DatasetId::ProductsProxy, Scale::Test);
    println!(
        "transaction graph: {} accounts, {} interactions, {:.0}% unseen",
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        100.0 * ds.split.test.len() as f64 / ds.graph.num_nodes() as f64
    );

    let k = 4;
    let cfg = PipelineConfig {
        k,
        hidden: vec![32],
        epochs: 60,
        gate_epochs: 10,
        ..PipelineConfig::default()
    };
    let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, false);

    // Calibrate T_s on the validation set: pick the largest threshold (=
    // fastest inference) whose accuracy stays within 1 point of the
    // fixed-depth reference.
    let reference =
        trained
            .engine
            .infer(&ds.split.val, &ds.graph.labels, &InferenceConfig::fixed(k));
    let mut chosen = InferenceConfig::fixed(k);
    for ts in [4.0f32, 2.0, 1.0, 0.5, 0.25] {
        let cfg = InferenceConfig::distance(ts, 1, k);
        let run = trained.engine.infer(&ds.split.val, &ds.graph.labels, &cfg);
        println!(
            "  T_s = {ts:<5} val acc {:.3} (ref {:.3}), mean depth {:.2}",
            run.report.accuracy,
            reference.report.accuracy,
            run.report.mean_depth()
        );
        if run.report.accuracy >= reference.report.accuracy - 0.01 {
            chosen = cfg;
            break;
        }
    }

    // Serving loop: unseen accounts arrive in batches of 50.
    let budget = Duration::from_millis(200);
    let mut served = 0usize;
    let mut violations = 0usize;
    let mut flagged = 0usize;
    for batch in ds.split.test.chunks(50).take(20) {
        let result = trained.engine.infer(batch, &ds.graph.labels, &chosen);
        served += batch.len();
        if result.report.total_time > budget {
            violations += 1;
        }
        // Treat class 0 as "suspicious" for the demo.
        flagged += result.predictions.iter().filter(|&&p| p == 0).count();
    }
    println!(
        "\nserved {served} accounts in 20 batches, {flagged} flagged, {violations} budget violations (budget {budget:?})"
    );
    println!("operating point: {chosen:?}");
}
