//! Latency/accuracy trade-off sweep (the Fig. 4 mechanic, interactive).
//!
//! NAI's operating point is a pair of simple global knobs (`T_s`,
//! `T_min`/`T_max`): sweeping them traces an accuracy-vs-cost frontier
//! that a deployment can pick from per its latency constraint. This
//! example prints the frontier alongside the exit-depth distributions
//! (the paper's Table VI view of the same runs).
//!
//! ```sh
//! cargo run --release --example latency_tradeoff
//! ```

use nai::datasets::{load, DatasetId, Scale};
use nai::prelude::*;

fn main() {
    let ds = load(DatasetId::ArxivProxy, Scale::Test);
    let k = 5;
    let cfg = PipelineConfig {
        k,
        hidden: vec![32],
        epochs: 60,
        gate_epochs: 15,
        ..PipelineConfig::default()
    };
    println!("training NAI (SGC, k = {k}) on {} ...", ds.id.name());
    let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, true);

    println!(
        "\n{:<26} {:>8} {:>12} {:>10}  exit-depth distribution",
        "operating point", "ACC", "FP mMACs", "meandepth"
    );
    let mut frontier: Vec<(String, InferenceConfig)> = vec![
        ("vanilla (fixed k)".into(), InferenceConfig::fixed(k)),
        ("gate NAP".into(), InferenceConfig::gate(1, k)),
    ];
    for ts in [0.25f32, 0.5, 1.0, 2.0, 4.0] {
        frontier.push((
            format!("distance T_s = {ts}"),
            InferenceConfig::distance(ts, 1, k),
        ));
    }
    for (name, cfg) in &frontier {
        let run = trained.engine.infer(&ds.split.test, &ds.graph.labels, cfg);
        println!(
            "{:<26} {:>8.3} {:>12.4} {:>10.2}  {:?}",
            name,
            run.report.accuracy,
            run.report.fp_mmacs_per_node(),
            run.report.mean_depth(),
            run.report.depth_histogram
        );
    }
    println!("\nlarger T_s → earlier exits → lower cost; pick the point that fits your SLA.");
}
