//! Quickstart: train NAI on a synthetic citation-style graph and run
//! node-adaptive inductive inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nai::datasets::{load, DatasetId, Scale};
use nai::prelude::*;

fn main() {
    // 1. A dataset proxy: homophilous power-law graph + inductive split.
    let ds = load(DatasetId::ArxivProxy, Scale::Test);
    println!(
        "dataset: {} — {} nodes, {} edges, {} features, {} classes",
        ds.id.name(),
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.graph.feature_dim(),
        ds.graph.num_classes
    );
    println!(
        "split: {} train / {} val / {} test (test nodes are unseen until inference)",
        ds.split.train.len(),
        ds.split.val.len(),
        ds.split.test.len()
    );

    // 2. Train the full NAI stack for SGC with depth k = 4:
    //    propagation → base classifier f^(k) → Inception Distillation →
    //    propagation gates.
    let cfg = PipelineConfig {
        k: 4,
        hidden: vec![32],
        epochs: 60,
        gate_epochs: 15,
        ..PipelineConfig::default()
    };
    println!("\ntraining NAI (SGC, k = {}) ...", cfg.k);
    let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, true);
    println!(
        "  base f^(k) val acc: {:.3}",
        trained.reports.base.best_val_acc
    );

    // 3. Calibrate T_s on the validation set (speed-first: the largest
    //    threshold within one point of the fixed-depth reference), then
    //    compare vanilla fixed-depth inference with the two NAP modes.
    let vanilla_val =
        trained
            .engine
            .infer(&ds.split.val, &ds.graph.labels, &InferenceConfig::fixed(4));
    let ts = [8.0f32, 4.0, 2.0, 1.0, 0.5]
        .into_iter()
        .find(|&ts| {
            trained
                .engine
                .infer(
                    &ds.split.val,
                    &ds.graph.labels,
                    &InferenceConfig::distance(ts, 1, 4),
                )
                .report
                .accuracy
                >= vanilla_val.report.accuracy - 0.01
        })
        .unwrap_or(0.5);
    println!("  calibrated T_s = {ts} on the validation set");

    let vanilla =
        trained
            .engine
            .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(4));
    let napd = trained.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig::distance(ts, 1, 4),
    );
    let napg = trained.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig::gate(1, 4),
    );

    println!(
        "\n{:<12} {:>8} {:>12} {:>12} {:>10}",
        "method", "ACC", "mMACs/node", "FP mMACs", "mean depth"
    );
    for (name, r) in [
        ("vanilla", &vanilla.report),
        ("NAI-d", &napd.report),
        ("NAI-g", &napg.report),
    ] {
        println!(
            "{:<12} {:>8.3} {:>12.4} {:>12.4} {:>10.2}",
            name,
            r.accuracy,
            r.mmacs_per_node(),
            r.fp_mmacs_per_node(),
            if r.depth_histogram.is_empty() {
                4.0
            } else {
                r.mean_depth()
            },
        );
    }
    println!(
        "\nNAI-d propagation MACs are {:.1}% of vanilla's — that is the node-adaptive saving.",
        100.0 * napd.report.macs.propagation as f64 / vanilla.report.macs.propagation.max(1) as f64
    );
}
