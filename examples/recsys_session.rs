//! Session-based recommendation scenario: generalization across base
//! models.
//!
//! Streaming recommenders classify items on a user-item co-occurrence
//! graph in real time (the paper's first motivating application). Here we
//! compare all four Scalable GNN backbones (SGC, SIGN, S²GC, GAMLP) under
//! the same NAI deployment to show the framework is model-agnostic — the
//! property Tables IX–XI establish.
//!
//! ```sh
//! cargo run --release --example recsys_session
//! ```

use nai::datasets::{load, DatasetId, Scale};
use nai::prelude::*;

fn main() {
    // Flickr proxy stands in for an item-item co-occurrence graph: low
    // homophily, moderate density — the hardest of the three proxies.
    let ds = load(DatasetId::FlickrProxy, Scale::Test);
    println!(
        "item graph: {} items, {} co-occurrence edges, {} categories\n",
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.graph.num_classes
    );

    let k = 3;
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "model", "vanillaACC", "naiACC", "mMACs/node", "FP mMACs", "mean depth"
    );
    for kind in [
        ModelKind::Sgc,
        ModelKind::Sign,
        ModelKind::S2gc,
        ModelKind::Gamlp,
    ] {
        let cfg = PipelineConfig {
            k,
            hidden: vec![32],
            epochs: 50,
            ..PipelineConfig::default()
        };
        let trained = NaiPipeline::new(kind, cfg).train(&ds.graph, &ds.split, false);
        let vanilla =
            trained
                .engine
                .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(k));
        let nai = trained.engine.infer(
            &ds.split.test,
            &ds.graph.labels,
            &InferenceConfig::distance(1.5, 1, k),
        );
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.4} {:>12.4} {:>10.2}",
            kind.name(),
            vanilla.report.accuracy,
            nai.report.accuracy,
            nai.report.mmacs_per_node(),
            nai.report.fp_mmacs_per_node(),
            nai.report.mean_depth()
        );
    }
    println!("\nNAI plugs into every Scalable GNN backbone unchanged —");
    println!("only the per-depth classifier input construction differs.");
}
