//! Root package of the NAI workspace.
//!
//! This crate intentionally contains no code: it exists so the
//! cross-crate integration suite in `tests/` and the runnable examples
//! in `examples/` are first-class Cargo targets of the workspace root.
//! All functionality lives in the `crates/*` libraries and is consumed
//! here through the [`nai`] facade crate.

pub use nai;
