#!/usr/bin/env bash
# Full verification gate for the NAI workspace.
#
#   ./ci.sh
#
# Order mirrors cost: cheap static checks come after the build so that
# compile errors surface with full diagnostics first. Each step prints
# its wall time so bench-visible regressions (e.g. a test suite that
# suddenly takes twice as long) show up directly in CI logs.
set -euo pipefail
cd "$(dirname "$0")"

step() {
  local name="$1"
  shift
  echo "==> ${name}"
  local t0
  t0=$(date +%s)
  "$@"
  local t1
  t1=$(date +%s)
  echo "    [${name}: $((t1 - t0))s]"
}

step "cargo build --release (tier-1, all targets incl. benches)" \
  cargo build --release --all-targets

step "cargo test -q (tier-1)" \
  cargo test -q

step "cargo clippy --all-targets (-D warnings)" \
  cargo clippy --all-targets --quiet -- -D warnings

# Project lint wall (crates/lint): token-aware static analysis of the
# workspace invariants — sync-facade hygiene (strict superset of the
# old `lint_sync` grep: grouped/aliased imports are caught too, and
# std::time::Instant is covered), atomic-ordering invariant comments,
# lock-poisoning hygiene, hot-path panic bans, and unused manifest
# deps. Suppressions require a stated reason; a reasonless allow is
# itself a finding.
step "nai lint --workspace (project invariants, token-aware)" \
  ./target/release/nai lint --workspace

# The linter must still be able to fail: the deliberately-bad fixture
# crate trips every rule, so a rule that silently stops firing (or an
# exit-code regression in the CLI) turns CI red here.
lint_selftest() {
  if ./target/release/nai lint crates/lint/tests/fixtures/bad-crate \
    > /dev/null 2>&1; then
    echo "lint accepted the deliberately-bad fixture crate"
    return 1
  fi
}

step "lint_selftest (bad fixture crate must produce findings + exit 1)" \
  lint_selftest

# Deterministic concurrency model check: rebuilds the serve/stream sync
# facades against the in-tree loom model checker (--cfg nai_model, its
# own target dir so normal builds stay cached) and exhaustively explores
# thread interleavings of the serve core's admission / panic-repair /
# cache-versioning / shutdown protocols plus the stats sorted-cache,
# within the default preemption bound. The loom crate's own self-tests
# run first. Time-boxed: each suite is bounded by loom's per-test
# iteration/duration budget; `timeout` is a hard backstop against a
# scheduler bug hanging CI.
model_check() {
  local flags="--cfg nai_model"
  timeout 600 env RUSTFLAGS="$flags" CARGO_TARGET_DIR=target/model \
    cargo test -q -p loom --test checker
  timeout 600 env RUSTFLAGS="$flags" CARGO_TARGET_DIR=target/model \
    cargo test -q -p nai-stream --test model_stats
  timeout 600 env RUSTFLAGS="$flags" CARGO_TARGET_DIR=target/model \
    cargo test -q -p nai-obs --test model
  timeout 600 env RUSTFLAGS="$flags" CARGO_TARGET_DIR=target/model \
    cargo test -q -p nai-serve --test model
}

step "model_check (exhaustive interleaving tests under --cfg nai_model)" \
  model_check

# Boots `nai serve` on an ephemeral port against a freshly trained
# checkpoint, health-checks it, pushes traffic over TCP via
# `nai loadgen` — both per-request connections and a pipelined
# keep-alive client (whole bursts written in one syscall through the
# reactor) — and asserts the process shuts down cleanly (exit 0,
# "stopped cleanly" in its log, meaning the reactor drained and
# exited).
serve_smoke() {
  local dir bin pid="" addr
  dir=$(mktemp -d)
  # Never leave the background server (or the temp dir) behind, even
  # when a mid-function step fails under `set -e`. RETURN traps are
  # global in bash, so the trap removes itself after the first firing.
  trap 'trap - RETURN; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null; rm -rf "$dir"; true' RETURN
  bin=target/release/nai
  "$bin" generate --dataset arxiv --scale test --out "$dir/ds" > /dev/null
  "$bin" train --graph "$dir/ds.graph" --split "$dir/ds.split" \
    --k 2 --epochs 8 --hidden 8 --out "$dir/m.naic" > /dev/null
  "$bin" serve --graph "$dir/ds.graph" --split "$dir/ds.split" \
    --model "$dir/m.naic" --port 0 --workers 2 --max-batch 16 \
    --max-wait-ms 1 > "$dir/serve.log" 2>&1 &
  pid=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$dir/serve.log" && break
    sleep 0.1
  done
  addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$dir/serve.log")
  if [ -z "$addr" ]; then
    echo "serve never came up:"; cat "$dir/serve.log"
    return 1
  fi
  curl -sf "http://$addr/healthz" | grep -q '"status":"ok"'
  curl -sf -X POST --data '{"op":"infer","nodes":[1,2,3]}' "http://$addr/v1" \
    | grep -q '"ok":true'
  # Sequenced replication: ingest a node (no shard routing) and read it
  # straight back; round-robin dispatch over the 2 workers means the
  # reads land on different replicas than the ingest, and every one
  # must know the new id — never an "out of range" error.
  local fdim feats node read
  fdim=$(curl -sf "http://$addr/healthz" | sed -n 's/.*"feature_dim":\([0-9]*\).*/\1/p')
  [ -n "$fdim" ]
  feats=$(printf '0.5,%.0s' $(seq 1 "$fdim"))
  feats="[${feats%,}]"
  node=$(curl -sf -X POST \
    --data "{\"op\":\"ingest\",\"features\":$feats,\"neighbors\":[0,1]}" \
    "http://$addr/v1" | sed -n 's/.*"node":\([0-9]*\).*/\1/p')
  [ -n "$node" ]
  for _ in 1 2; do
    read=$(curl -sf -X POST --data "{\"op\":\"infer\",\"nodes\":[$node]}" \
      "http://$addr/v1")
    echo "$read" | grep -q '"ok":true'
    ! echo "$read" | grep -q 'out of range'
  done
  # Pipelined keep-alive client: whole bursts hit the reactor in one
  # syscall, so this exercises the incremental parser's
  # multiple-requests-per-read path and ordered response writeback.
  # (Capture to a file — `grep -q` would close the pipe at the banner
  # and break loadgen's later prints.)
  "$bin" loadgen --addr "$addr" --requests 48 --clients 2 --mode infer \
    --pipeline 8 > "$dir/loadgen_pipelined.log"
  grep -q "pipeline depth 8" "$dir/loadgen_pipelined.log"
  # Per-request connections: every request opens, sends `Connection:
  # close`, and reads until EOF — the accept/teardown fast path.
  "$bin" loadgen --addr "$addr" --requests 24 --clients 2 --mode infer \
    --per-request > "$dir/loadgen_per_request.log"
  grep -q "per-request connections" "$dir/loadgen_per_request.log"
  "$bin" loadgen --addr "$addr" --requests 40 --clients 2 --mode mixed --shutdown
  wait "$pid"
  pid=""
  # "stopped cleanly" is printed only after Server::join returns, i.e.
  # after the reactor thread drained in-flight connections and exited.
  grep -q "stopped cleanly" "$dir/serve.log"

  # Cache-enabled run: ingest (sequences a mutation through the
  # invalidation layer) then read the same node twice — the second read
  # must be a cache hit, visible in /metrics.
  "$bin" serve --graph "$dir/ds.graph" --split "$dir/ds.split" \
    --model "$dir/m.naic" --port 0 --workers 2 --max-batch 16 \
    --max-wait-ms 1 --cache --cache-cap 256 > "$dir/serve_cache.log" 2>&1 &
  pid=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$dir/serve_cache.log" && break
    sleep 0.1
  done
  addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$dir/serve_cache.log")
  if [ -z "$addr" ]; then
    echo "cache serve never came up:"; cat "$dir/serve_cache.log"
    return 1
  fi
  grep -q "cache cap 256" "$dir/serve_cache.log"
  node=$(curl -sf -X POST \
    --data "{\"op\":\"ingest\",\"features\":$feats,\"neighbors\":[0,1]}" \
    "http://$addr/v1" | sed -n 's/.*"node":\([0-9]*\).*/\1/p')
  [ -n "$node" ]
  for _ in 1 2; do
    curl -sf -X POST --data "{\"op\":\"infer\",\"nodes\":[$node]}" \
      "http://$addr/v1" | grep -q '"ok":true'
  done
  curl -sf "http://$addr/metrics" | grep -q '"cache_hits":[1-9]'
  curl -sf -X POST "http://$addr/shutdown" > /dev/null
  wait "$pid"
  pid=""
  grep -q "stopped cleanly" "$dir/serve_cache.log"
}

step "serve smoke (healthz + inference over TCP + clean shutdown)" \
  serve_smoke

# Observability surfaces against a live server: push traffic with
# `nai loadgen`, then assert the Prometheus exposition carries the
# request/stage histograms (cumulative buckets, exact counts), the
# JSON scrape carries per-stage spans and batch anatomy, and the
# flight recorder at /debug/slow holds stage-timed traces.
obs_smoke() {
  local dir bin pid="" addr
  dir=$(mktemp -d)
  trap 'trap - RETURN; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null; rm -rf "$dir"; true' RETURN
  bin=target/release/nai
  "$bin" generate --dataset arxiv --scale test --out "$dir/ds" > /dev/null
  "$bin" train --graph "$dir/ds.graph" --split "$dir/ds.split" \
    --k 2 --epochs 8 --hidden 8 --out "$dir/m.naic" > /dev/null
  "$bin" serve --graph "$dir/ds.graph" --split "$dir/ds.split" \
    --model "$dir/m.naic" --port 0 --workers 2 --max-batch 16 \
    --max-wait-ms 1 > "$dir/serve.log" 2>&1 &
  pid=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$dir/serve.log" && break
    sleep 0.1
  done
  addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$dir/serve.log")
  if [ -z "$addr" ]; then
    echo "serve never came up:"; cat "$dir/serve.log"
    return 1
  fi
  "$bin" loadgen --addr "$addr" --requests 60 --clients 2 --mode infer \
    > "$dir/loadgen.log"
  grep -q "closed_on_" "$dir/loadgen.log"
  # Prometheus text exposition: typed families, labeled stage series
  # with nonzero counts, cumulative buckets ending at +Inf.
  curl -sf "http://$addr/metrics?format=prom" > "$dir/prom.txt"
  grep -q '^# TYPE nai_request_duration_seconds histogram' "$dir/prom.txt"
  grep -q 'nai_request_duration_seconds_bucket{le="+Inf"}' "$dir/prom.txt"
  grep -Eq '^nai_request_duration_seconds_count [1-9]' "$dir/prom.txt"
  grep -Eq '^nai_request_stage_duration_seconds_count\{stage="queue_wait"\} [1-9]' \
    "$dir/prom.txt"
  grep -q '^nai_batch_closed_total{reason="max_batch"}' "$dir/prom.txt"
  # JSON scrape: per-stage spans and batch anatomy ride along.
  curl -sf "http://$addr/metrics" | grep -q '"queue_wait"'
  curl -sf "http://$addr/metrics" | grep -q '"closed_on_deadline"'
  # Flight recorder: stage-timed traces of the slowest requests.
  curl -sf "http://$addr/debug/slow" > "$dir/slow.json"
  grep -q '"trace_id"' "$dir/slow.json"
  grep -q '"stages_us"' "$dir/slow.json"
  curl -sf -X POST "http://$addr/shutdown" > /dev/null
  wait "$pid"
  pid=""
  grep -q "stopped cleanly" "$dir/serve.log"
}

step "obs smoke (prom exposition + stage spans + flight recorder live)" \
  obs_smoke

# Runs a tiny (topology × workload) matrix through `nai bench` and
# checks the machine-readable report. `nai bench` itself re-parses the
# emitted JSON and validates it against a hard-coded schema field list
# (see `validate_report` in crates/cli/src/bench.rs), so schema drift —
# a renamed/dropped field, a missing cell — fails this step; the greps
# below re-assert cell presence from the outside.
bench_smoke() {
  local dir
  dir=$(mktemp -d)
  trap 'trap - RETURN; rm -rf "$dir"; true' RETURN
  target/release/nai bench --json "$dir/bench.json" --scale test \
    --topologies power-law,hub-star --workloads uniform-read,zipf-read \
    --requests 24 --epochs 4 --clients 2 --cache --cache-cap 64 \
    --transport both --pipeline 4
  for cell in power-law hub-star uniform-read zipf-read \
      schema_version depth_histogram shed_ops throughput_rps \
      cache_enabled cache_hits cache_misses \
      latency_ns closed_on_idle closed_on_shutdown \
      transport pipeline_depth pipelined per_request; do
    grep -q "\"$cell\"" "$dir/bench.json"
  done
  grep -q '"cache_enabled": *true' "$dir/bench.json"
}

step "bench smoke (tiny scenario matrix → validated JSON report)" \
  bench_smoke

step "cargo doc --no-deps (-D warnings)" \
  env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

step "cargo fmt --check" \
  cargo fmt --check

echo "ci.sh: all green"
