#!/usr/bin/env bash
# Full verification gate for the NAI workspace.
#
#   ./ci.sh
#
# Order mirrors cost: cheap static checks come after the build so that
# compile errors surface with full diagnostics first.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1, all targets incl. benches)"
cargo build --release --all-targets

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo doc --no-deps (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
