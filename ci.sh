#!/usr/bin/env bash
# Full verification gate for the NAI workspace.
#
#   ./ci.sh
#
# Order mirrors cost: cheap static checks come after the build so that
# compile errors surface with full diagnostics first. Each step prints
# its wall time so bench-visible regressions (e.g. a test suite that
# suddenly takes twice as long) show up directly in CI logs.
set -euo pipefail
cd "$(dirname "$0")"

step() {
  local name="$1"
  shift
  echo "==> ${name}"
  local t0
  t0=$(date +%s)
  "$@"
  local t1
  t1=$(date +%s)
  echo "    [${name}: $((t1 - t0))s]"
}

step "cargo build --release (tier-1, all targets incl. benches)" \
  cargo build --release --all-targets

step "cargo test -q (tier-1)" \
  cargo test -q

step "cargo clippy --all-targets (-D warnings)" \
  cargo clippy --all-targets --quiet -- -D warnings

step "cargo doc --no-deps (-D warnings)" \
  env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

step "cargo fmt --check" \
  cargo fmt --check

echo "ci.sh: all green"
