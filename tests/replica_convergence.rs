//! Property test: shard replicas converge under sequenced mutation
//! replication.
//!
//! For random closed-loop interleavings of ingests, edge arrivals, and
//! reads — dispatched with no routing hints over shard counts
//! {1, 2, 4} — every reply must match a single-threaded
//! [`StreamingEngine`] oracle fed the same sequence, and after a drain
//! every replica must hold the *identical* graph (`snapshot_csr()`
//! bit-equal, features included). This is the serving layer's
//! correctness contract: mutations are applied on every replica in one
//! global order, so there is no such thing as a wrong shard to read
//! from.

use nai::core::config::{CacheConfig, InferenceConfig, LoadShedPolicy, ServeConfig};
use nai::models::{DepthClassifier, ModelKind};
use nai::serve::{NaiService, Op, Reply, Request};
use nai::stream::{DynamicGraph, StreamingEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const F: usize = 5;
const K: usize = 2;
const CLASSES: usize = 3;
const SEED_NODES: usize = 50;

/// Deterministic replica factory: every call yields a bit-identical
/// engine, so service replicas and the oracle agree at boot.
fn engine() -> StreamingEngine {
    let g = nai::graph::generators::generate(
        &nai::graph::generators::GeneratorConfig {
            num_nodes: SEED_NODES,
            num_classes: CLASSES,
            feature_dim: F,
            avg_degree: 4.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(97),
    );
    let mut rng = StdRng::seed_from_u64(98);
    let classifiers: Vec<DepthClassifier> = (1..=K)
        .map(|d| DepthClassifier::new(ModelKind::Sgc, d, F, CLASSES, &[6], 0.0, &mut rng))
        .collect();
    StreamingEngine::with_lambda2(DynamicGraph::from_graph(&g), classifiers, None, 0.5, 0.9)
}

fn infer_cfg() -> InferenceConfig {
    InferenceConfig::distance(0.5, 1, K)
}

fn serve_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_batch: 8,
        max_wait: Duration::from_millis(1),
        queue_cap: 64,
        shed: LoadShedPolicy {
            trigger_fraction: 1.0,
            t_max_cap: 0, // shedding off: depths must match the oracle
        },
        cache: CacheConfig::off(),
    }
}

/// Random valid op script: every op is generated against the node
/// count the sequenced service (and the oracle) will actually have at
/// that point, so replies are all `ok` and directly comparable.
fn script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes = SEED_NODES as u32;
    (0..len)
        .map(|_| match rng.gen_range(0..4u8) {
            0 => {
                let degree = rng.gen_range(0..3usize);
                let neighbors: Vec<u32> = (0..degree).map(|_| rng.gen_range(0..nodes)).collect();
                nodes += 1;
                Op::Ingest {
                    features: (0..F).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                    neighbors,
                }
            }
            1 => {
                let u = rng.gen_range(0..nodes);
                let v = (u + 1 + rng.gen_range(0..nodes - 1)) % nodes;
                Op::ObserveEdge { u, v }
            }
            _ => Op::Infer {
                // Bias reads toward the newest ids — the replicated
                // region is where divergence would show.
                nodes: (0..2)
                    .map(|_| {
                        if rng.gen_range(0..2u8) == 0 && nodes > SEED_NODES as u32 {
                            rng.gen_range(SEED_NODES as u32..nodes)
                        } else {
                            rng.gen_range(0..nodes)
                        }
                    })
                    .collect(),
            },
        })
        .collect()
}

fn run_and_check(shards: usize, ops: &[Op]) -> Result<(), TestCaseError> {
    let engines: Vec<StreamingEngine> = (0..shards).map(|_| engine()).collect();
    let service =
        NaiService::new(engines, infer_cfg(), serve_cfg(shards)).map_err(TestCaseError::fail)?;
    let mut oracle = engine();
    for op in ops {
        let reply = service
            .call(Request {
                op: op.clone(),
                shard: None,
            })
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        match (op, reply) {
            (Op::Infer { nodes }, Reply::Infer { results, .. }) => {
                let expected = oracle.infer_nodes(nodes, &infer_cfg());
                prop_assert_eq!(results.len(), nodes.len());
                for ((r, &node), &(pred, depth)) in results.iter().zip(nodes).zip(&expected) {
                    prop_assert_eq!(r.node, node);
                    prop_assert_eq!(r.prediction, pred);
                    prop_assert_eq!(r.depth, depth);
                }
            }
            (
                Op::Ingest {
                    features,
                    neighbors,
                },
                Reply::Ingest {
                    node,
                    prediction,
                    depth,
                    ..
                },
            ) => {
                let id = oracle.ingest(features, neighbors);
                let expected = oracle.flush(&infer_cfg());
                prop_assert_eq!(node, id, "globally sequential id");
                prop_assert_eq!(prediction, expected[0].prediction);
                prop_assert_eq!(depth, expected[0].depth);
            }
            (Op::ObserveEdge { u, v }, Reply::Edge { added, .. }) => {
                prop_assert_eq!(added, oracle.observe_edge(*u, *v));
            }
            (op, other) => {
                return Err(TestCaseError::fail(format!(
                    "op {op:?} answered with {other:?}"
                )))
            }
        }
    }

    // Drain and compare every replica's materialized graph — to each
    // other and to the oracle — bit for bit.
    let replicas = service.into_engines();
    prop_assert_eq!(replicas.len(), shards);
    let want = oracle.graph();
    let want_csr = want.snapshot_csr();
    for (w, replica) in replicas.iter().enumerate() {
        let got = replica.graph();
        prop_assert_eq!(got.num_nodes(), want.num_nodes(), "replica {}", w);
        prop_assert_eq!(got.num_edges(), want.num_edges(), "replica {}", w);
        let got_csr = got.snapshot_csr();
        prop_assert_eq!(got_csr.nnz(), want_csr.nnz(), "replica {}", w);
        for i in 0..want.num_nodes() {
            prop_assert_eq!(
                got_csr.row_indices(i),
                want_csr.row_indices(i),
                "replica {} row {}",
                w,
                i
            );
            prop_assert_eq!(
                got.feature(i as u32),
                want.feature(i as u32),
                "replica {} features {}",
                w,
                i
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn replicas_converge_and_match_single_engine_oracle(
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        seed in any::<u64>(),
        len in 12..28usize,
    ) {
        let ops = script(seed, len);
        run_and_check(shards, &ops)?;
    }
}
