//! End-to-end inductive pipeline tests: train on the observed subgraph,
//! infer on unseen nodes, and verify the paper's headline claims in
//! miniature — adaptive depth saves feature-processing work without a
//! meaningful accuracy drop.

use nai::datasets::{load, DatasetId, Scale};
use nai::prelude::*;

fn trained(id: DatasetId, k: usize, gates: bool) -> (nai::datasets::Dataset, TrainedNai) {
    let ds = load(id, Scale::Test);
    let cfg = PipelineConfig {
        k,
        hidden: vec![32],
        epochs: 50,
        patience: 12,
        gate_epochs: 12,
        distill: nai::core::config::DistillConfig {
            epochs: 15,
            ensemble_r: 2,
            ..Default::default()
        },
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, gates);
    (ds, t)
}

#[test]
fn vanilla_inductive_inference_beats_majority_class() {
    let (ds, t) = trained(DatasetId::ArxivProxy, 3, false);
    let run = t
        .engine
        .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(3));
    let majority =
        ds.graph.class_histogram().into_iter().max().unwrap() as f64 / ds.graph.num_nodes() as f64;
    assert!(
        run.report.accuracy > majority + 0.1,
        "acc {} vs majority {majority}",
        run.report.accuracy
    );
}

#[test]
fn distance_nap_saves_fp_macs_with_small_accuracy_cost() {
    let (ds, t) = trained(DatasetId::ArxivProxy, 4, false);
    let vanilla = t
        .engine
        .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(4));
    // Mid threshold chosen on validation.
    let mut best: Option<(f32, f64)> = None;
    for ts in [0.5f32, 1.0, 2.0] {
        let v = t.engine.infer(
            &ds.split.val,
            &ds.graph.labels,
            &InferenceConfig::distance(ts, 1, 4),
        );
        if best.is_none_or(|(_, acc)| v.report.accuracy > acc) {
            best = Some((ts, v.report.accuracy));
        }
    }
    let (ts, _) = best.unwrap();
    let nai = t.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig::distance(ts, 1, 4),
    );
    // A conservative validation-chosen threshold may trigger few exits, in
    // which case the distance checks add up to `f` MACs per node per depth
    // of overhead; allow that margin but nothing more.
    assert!(
        nai.report.macs.feature_processing() as f64
            <= vanilla.report.macs.feature_processing() as f64 * 1.05,
        "NAP must not do meaningfully more FP work ({} vs {})",
        nai.report.macs.feature_processing(),
        vanilla.report.macs.feature_processing()
    );
    assert!(
        nai.report.accuracy > vanilla.report.accuracy - 0.08,
        "NAI {} vs vanilla {}",
        nai.report.accuracy,
        vanilla.report.accuracy
    );
}

#[test]
fn gate_nap_runs_end_to_end_on_unseen_nodes() {
    let (ds, t) = trained(DatasetId::ArxivProxy, 3, true);
    let run = t.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig::gate(1, 3),
    );
    assert_eq!(run.predictions.len(), ds.split.test.len());
    assert!(run.depths.iter().all(|&d| (1..=3).contains(&d)));
    assert!(run.report.accuracy > 0.3, "acc {}", run.report.accuracy);
}

#[test]
fn aggressive_early_exit_is_cheaper_than_conservative() {
    let (ds, t) = trained(DatasetId::ProductsProxy, 3, false);
    let eager = t.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig::distance(f32::INFINITY, 1, 3),
    );
    let lazy = t.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig::distance(0.0, 1, 3),
    );
    assert!(eager.report.mean_depth() < lazy.report.mean_depth());
    assert!(eager.report.macs.propagation < lazy.report.macs.propagation);
    // MACs ordering must also show up per Table I's q-dependence.
    assert!(eager.report.mmacs_per_node() < lazy.report.mmacs_per_node());
}

#[test]
fn depth_histogram_partitions_the_test_set() {
    let (ds, t) = trained(DatasetId::FlickrProxy, 3, false);
    let run = t.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig::distance(1.0, 1, 3),
    );
    assert_eq!(
        run.report.depth_histogram.iter().sum::<usize>(),
        ds.split.test.len()
    );
    for (i, &d) in run.depths.iter().enumerate() {
        assert!((1..=3).contains(&d), "node {i} depth {d}");
    }
}

#[test]
fn tmin_tmax_bounds_are_respected() {
    let (ds, t) = trained(DatasetId::ArxivProxy, 4, false);
    let run = t.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig {
            t_min: 2,
            t_max: 3,
            nap: NapMode::Distance { ts: f32::INFINITY },
            batch_size: 100,
            parallel_spmm: false,
        },
    );
    assert!(run.depths.iter().all(|&d| (2..=3).contains(&d)));
}

#[test]
fn inception_distillation_helps_shallow_exits() {
    // Train twice: with and without Inception Distillation; compare
    // accuracy at the all-exit-at-depth-1 operating point (Table VIII's
    // f^(1) comparison).
    let ds = load(DatasetId::ArxivProxy, Scale::Test);
    let base_cfg = PipelineConfig {
        k: 3,
        hidden: vec![32],
        epochs: 50,
        patience: 12,
        distill: nai::core::config::DistillConfig {
            epochs: 15,
            ensemble_r: 2,
            ..Default::default()
        },
        ..PipelineConfig::default()
    };
    let mut no_id = base_cfg.clone();
    no_id.use_single_scale = false;
    no_id.use_multi_scale = false;
    let with_id = NaiPipeline::new(ModelKind::Sgc, base_cfg).train(&ds.graph, &ds.split, false);
    let without_id = NaiPipeline::new(ModelKind::Sgc, no_id).train(&ds.graph, &ds.split, false);
    let exit1 = InferenceConfig::distance(f32::INFINITY, 1, 3);
    let acc_with = with_id
        .engine
        .infer(&ds.split.test, &ds.graph.labels, &exit1)
        .report
        .accuracy;
    let acc_without = without_id
        .engine
        .infer(&ds.split.test, &ds.graph.labels, &exit1)
        .report
        .accuracy;
    assert!(
        acc_with >= acc_without - 0.03,
        "ID should not hurt f^(1): with {acc_with} vs without {acc_without}"
    );
}
