//! Integration: the online serving stack over real sockets.
//!
//! Boots `nai::serve` on an ephemeral port and drives it with clients,
//! then checks the serving contract:
//!
//! * **replicated determinism** — replies to a closed-loop interleaved
//!   ingest / edge-arrival / infer sequence, dispatched with **no**
//!   `shard` routing (reads fan out round-robin over the replicas, and
//!   every mutation is sequenced and broadcast to all of them), are
//!   bit-equal to a single-threaded [`StreamingEngine`] fed the same
//!   sequence — including reads of just-ingested nodes, which any
//!   replica must serve;
//! * **bounded admission** — beyond `queue_cap` in-flight requests the
//!   service answers `overloaded` immediately (HTTP 503 on single-line
//!   bodies), it never hangs, and admitted requests still complete;
//! * `/healthz`, `/metrics`, and `/shutdown` behave.

use nai::core::config::{CacheConfig, InferenceConfig, LoadShedPolicy, ServeConfig};
use nai::models::{DepthClassifier, ModelKind};
use nai::serve::{HttpClient, Json, NaiService, Op, Server};
use nai::stream::{DynamicGraph, StreamingEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const F: usize = 6;
const K: usize = 2;
const CLASSES: usize = 4;
const SEED_NODES: usize = 90;

/// Engines with deterministic (seeded, untrained) weights: every call
/// builds a bit-identical replica, so shards and oracles agree.
fn engine() -> StreamingEngine {
    let g = nai::graph::generators::generate(
        &nai::graph::generators::GeneratorConfig {
            num_nodes: SEED_NODES,
            num_classes: CLASSES,
            feature_dim: F,
            avg_degree: 5.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(41),
    );
    let mut rng = StdRng::seed_from_u64(42);
    let classifiers: Vec<DepthClassifier> = (1..=K)
        .map(|d| DepthClassifier::new(ModelKind::Sgc, d, F, CLASSES, &[8], 0.0, &mut rng))
        .collect();
    StreamingEngine::with_lambda2(DynamicGraph::from_graph(&g), classifiers, None, 0.5, 0.9)
}

fn infer_cfg() -> InferenceConfig {
    InferenceConfig::distance(0.5, 1, K)
}

/// A deterministic closed-loop interleaving of all three op kinds.
/// Ingests grow the *global* graph (sequenced replication assigns ids
/// service-wide); infers deliberately include the most recent arrival,
/// so round-robin dispatch exercises read-your-writes on every
/// replica; edge arrivals include occasional duplicates, whose
/// `added:false` answer must match the oracle.
fn interleaved_script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes = SEED_NODES as u32;
    let mut last_ingested: Option<u32> = None;
    (0..len)
        .map(|i| match i % 4 {
            1 => {
                let neighbors: Vec<u32> = (0..3).map(|_| rng.gen_range(0..nodes)).collect();
                nodes += 1;
                last_ingested = Some(nodes - 1);
                Op::Ingest {
                    features: (0..F).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                    neighbors,
                }
            }
            3 => {
                let u = rng.gen_range(0..nodes);
                let v = (u + 1 + rng.gen_range(0..nodes - 1)) % nodes;
                debug_assert_ne!(u, v);
                Op::ObserveEdge { u, v }
            }
            _ => {
                let mut read: Vec<u32> = vec![rng.gen_range(0..nodes)];
                if let Some(fresh) = last_ingested {
                    // Immediately read back the latest arrival: the
                    // next replica in the rotation must know it.
                    read.push(fresh);
                }
                Op::Infer { nodes: read }
            }
        })
        .collect()
}

#[test]
fn round_robin_interleaved_workload_matches_single_engine_oracle() {
    const SHARDS: usize = 2;
    const OPS: usize = 48;
    let engines: Vec<StreamingEngine> = (0..SHARDS).map(|_| engine()).collect();
    let service = NaiService::new(
        engines,
        infer_cfg(),
        ServeConfig {
            workers: SHARDS,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_cap: 256,
            shed: LoadShedPolicy {
                trigger_fraction: 1.0,
                t_max_cap: 0, // shedding off: depths must match the oracle
            },
            cache: CacheConfig::off(),
        },
    )
    .unwrap();
    let server = Server::start(Arc::new(service), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let script = interleaved_script(7001, OPS);

    // Drive the whole interleaved script closed-loop over one socket,
    // with no shard field anywhere: the service's own round-robin
    // decides which replica answers each request.
    let mut client = HttpClient::connect(addr).unwrap();
    let mut replies = Vec::with_capacity(OPS);
    for op in &script {
        let line = nai::serve::proto::render_request(&nai::serve::Request {
            op: op.clone(),
            shard: None,
        });
        let (status, body) = client
            .request("POST", "/v1", Some(&format!("{line}\n")))
            .unwrap();
        assert_eq!(status, 200, "body: {body}");
        replies.push(Json::parse(body.trim()).unwrap());
    }

    // Replay the script on a fresh single-threaded engine and demand
    // bit-identical answers, whatever replica served each request.
    let mut oracle = engine();
    let mut last_applied = 0u64;
    let mut answering_shards = std::collections::HashSet::new();
    for (op, reply) in script.iter().zip(&replies) {
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "{reply}"
        );
        let shard = reply.get("shard").and_then(Json::as_u64).unwrap();
        assert!((shard as usize) < SHARDS);
        answering_shards.insert(shard);
        let applied = reply.get("applied_seq").and_then(Json::as_u64).unwrap();
        assert!(
            applied >= last_applied || matches!(op, Op::ObserveEdge { .. }),
            "applied_seq regressed for a read: {applied} < {last_applied}"
        );
        last_applied = last_applied.max(applied);
        match op {
            Op::Infer { nodes } => {
                let expected = oracle.infer_nodes(nodes, &infer_cfg());
                let results = reply.get("results").unwrap().as_arr().unwrap();
                assert_eq!(results.len(), nodes.len());
                for ((r, &node), &(pred, depth)) in results.iter().zip(nodes).zip(&expected) {
                    assert_eq!(r.get("node").unwrap().as_u64(), Some(node as u64));
                    assert_eq!(r.get("prediction").unwrap().as_u64(), Some(pred as u64));
                    assert_eq!(r.get("depth").unwrap().as_u64(), Some(depth as u64));
                }
            }
            Op::Ingest {
                features,
                neighbors,
            } => {
                let id = oracle.ingest(features, neighbors);
                let expected = oracle.flush(&infer_cfg());
                assert_eq!(reply.get("node").unwrap().as_u64(), Some(id as u64));
                assert_eq!(
                    reply.get("prediction").unwrap().as_u64(),
                    Some(expected[0].prediction as u64)
                );
                assert_eq!(
                    reply.get("depth").unwrap().as_u64(),
                    Some(expected[0].depth as u64)
                );
            }
            Op::ObserveEdge { u, v } => {
                let added = oracle.observe_edge(*u, *v);
                assert_eq!(reply.get("added").and_then(Json::as_bool), Some(added));
            }
        }
    }
    assert_eq!(
        answering_shards.len(),
        SHARDS,
        "round-robin must spread work over every replica"
    );

    // Health and metrics reflect the traffic that just happened.
    let (status, body) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(body.trim()).unwrap();
    assert_eq!(health.get("shards").unwrap().as_u64(), Some(SHARDS as u64));
    assert_eq!(
        health.get("seed_nodes").unwrap().as_u64(),
        Some(SEED_NODES as u64)
    );
    let (status, body) = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let metrics = Json::parse(body.trim()).unwrap();
    let served = metrics.get("served").unwrap().as_u64().unwrap();
    assert!(served >= OPS as u64 / 2, "served {served}");
    assert_eq!(metrics.get("overloaded").unwrap().as_u64(), Some(0));
    assert!(
        metrics.get("edges_observed").unwrap().as_u64().unwrap() >= (OPS / 4) as u64,
        "every edge arrival sequenced once"
    );
    let macs = metrics.get("macs").unwrap();
    assert!(macs.get("propagation").unwrap().as_u64().unwrap() > 0);
    assert!(
        macs.get("replication").unwrap().as_u64().unwrap() > 0,
        "replicated mutation work attributed to its own stage"
    );
    drop(client);

    let (status, _) = nai::serve::http_call(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    server.join();
}

#[test]
fn queue_overflow_returns_overloaded_not_a_hang() {
    const CAP: usize = 3;
    const CLIENTS: usize = 12;
    let service = NaiService::new(
        vec![engine()],
        infer_cfg(),
        ServeConfig {
            workers: 1,
            // max_batch 1 keeps the lone worker busy in the engine (one
            // request per flush) while the rest of the burst lands, so
            // the admission bound must trip even though the
            // work-conserving batcher no longer parks admitted requests
            // on the deadline.
            max_batch: 1,
            max_wait: Duration::from_millis(400),
            queue_cap: CAP,
            shed: LoadShedPolicy {
                trigger_fraction: 1.0,
                t_max_cap: 0,
            },
            cache: CacheConfig::off(),
        },
    )
    .unwrap();
    let server = Server::start(Arc::new(service), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // One pipelined burst, led by a deliberately expensive request (a
    // few thousand node reads) that pins the lone worker inside the
    // engine. The reactor's batched parse pushes the 12 small requests
    // behind it into admission back to back — microseconds, while the
    // worker is busy for milliseconds — so at most one of them can be
    // popped before the queue bound trips and the rest shed.
    let start = Instant::now();
    let big_nodes: Vec<String> = (0..4000).map(|i| (i % SEED_NODES).to_string()).collect();
    let mut lines = vec![format!(
        "{{\"op\":\"infer\",\"nodes\":[{}]}}\n",
        big_nodes.join(",")
    )];
    lines.extend(
        (0..CLIENTS).map(|i| format!("{{\"op\":\"infer\",\"nodes\":[{}]}}\n", i % SEED_NODES)),
    );
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let mut client = HttpClient::connect(addr).unwrap();
    let mut replies = client.pipeline("POST", "/v1", &refs).unwrap().into_iter();
    let (big_status, _) = replies.next().unwrap();
    assert_eq!(big_status, 200, "the pinning request itself is served");
    let outcomes: Vec<(u16, String)> = replies
        .map(|(status, body)| {
            let kind = Json::parse(body.trim())
                .unwrap()
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("ok")
                .to_string();
            (status, kind)
        })
        .collect();
    // Every client got an answer, promptly — nobody hung on a full queue.
    assert!(
        start.elapsed() < Duration::from_secs(15),
        "took {:?}",
        start.elapsed()
    );
    assert_eq!(outcomes.len(), CLIENTS);
    let overloaded = outcomes
        .iter()
        .filter(|(status, kind)| kind == "overloaded" && *status == 503)
        .count();
    let ok = outcomes.iter().filter(|(_, kind)| kind == "ok").count();
    assert_eq!(ok + overloaded, CLIENTS, "outcomes: {outcomes:?}");
    assert!(
        overloaded >= CLIENTS - 2 * CAP,
        "expected most of the burst shed, got {overloaded} of {CLIENTS}"
    );
    assert!(ok >= 1, "the admitted requests must still be answered");

    server.shutdown();
    server.join();
}
