//! Reproducibility and serialization: fixed seeds produce identical
//! pipelines; graphs round-trip through the binary format; degenerate
//! inputs fail loudly instead of corrupting results.

use nai::datasets::{load, DatasetId, Scale};
use nai::graph::generators::{generate, GeneratorConfig};
use nai::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn identical_seeds_produce_identical_predictions() {
    let run = || {
        let ds = load(DatasetId::ArxivProxy, Scale::Test);
        let cfg = PipelineConfig {
            k: 2,
            hidden: vec![16],
            epochs: 20,
            use_multi_scale: false,
            seed: 99,
            ..PipelineConfig::default()
        };
        let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, false);
        t.engine
            .infer(
                &ds.split.test,
                &ds.graph.labels,
                &InferenceConfig::distance(1.0, 1, 2),
            )
            .predictions
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_change_the_model() {
    let ds = load(DatasetId::ArxivProxy, Scale::Test);
    let mk = |seed| {
        let cfg = PipelineConfig {
            k: 2,
            hidden: vec![16],
            epochs: 20,
            use_multi_scale: false,
            seed,
            ..PipelineConfig::default()
        };
        NaiPipeline::new(ModelKind::Sgc, cfg)
            .train(&ds.graph, &ds.split, false)
            .engine
            .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(2))
            .predictions
    };
    // Not a hard guarantee, but with 120+ test nodes two random inits
    // virtually never agree everywhere.
    assert_ne!(mk(1), mk(2));
}

#[test]
fn graph_io_roundtrip_through_disk() {
    let g = generate(
        &GeneratorConfig {
            num_nodes: 400,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(7),
    );
    let dir = std::env::temp_dir().join("nai_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.naig");
    nai::graph::io::save_graph(&g, &path).unwrap();
    let back = nai::graph::io::load_graph(&path).unwrap();
    assert_eq!(back.labels, g.labels);
    assert_eq!(back.adj.indptr(), g.adj.indptr());
    assert_eq!(back.features.as_slice(), g.features.as_slice());
    std::fs::remove_file(&path).ok();
}

#[test]
fn single_class_graph_trains_without_panicking() {
    // Degenerate labels: every node in class 0.
    let mut g = generate(
        &GeneratorConfig {
            num_nodes: 200,
            num_classes: 2,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(8),
    );
    for l in g.labels.iter_mut() {
        *l = 0;
    }
    let split = InductiveSplit::random(200, 0.5, 0.2, &mut StdRng::seed_from_u64(9));
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![],
        epochs: 15,
        use_single_scale: false,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
    let run = t
        .engine
        .infer(&split.test, &g.labels, &InferenceConfig::fixed(2));
    // The classifier should converge to the single class almost everywhere.
    assert!(run.report.accuracy > 0.95, "acc {}", run.report.accuracy);
}

#[test]
fn disconnected_test_nodes_are_handled() {
    // Nodes with no edges at all: propagation sees only self-loops and the
    // stationary state equals the raw feature.
    let g = generate(
        &GeneratorConfig {
            num_nodes: 150,
            avg_degree: 2.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(10),
    );
    let split = InductiveSplit::random(150, 0.5, 0.2, &mut StdRng::seed_from_u64(11));
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![16],
        epochs: 15,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
    let run = t.engine.infer(
        &split.test,
        &g.labels,
        &InferenceConfig::distance(0.5, 1, 2),
    );
    assert_eq!(run.predictions.len(), split.test.len());
    assert!(run.predictions.iter().all(|&p| p < g.num_classes));
}

#[test]
fn empty_and_singleton_batches_work() {
    let ds = load(DatasetId::FlickrProxy, Scale::Test);
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![16],
        epochs: 10,
        use_single_scale: false,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, false);
    let empty = t
        .engine
        .infer(&[], &ds.graph.labels, &InferenceConfig::fixed(2));
    assert!(empty.predictions.is_empty());
    let single = t.engine.infer(
        &ds.split.test[..1],
        &ds.graph.labels,
        &InferenceConfig {
            batch_size: 1,
            ..InferenceConfig::distance(1.0, 1, 2)
        },
    );
    assert_eq!(single.predictions.len(), 1);
    assert_eq!(single.report.batches, 1);
}
