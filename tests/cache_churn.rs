//! Churn cell for the prediction cache (ISSUE 6 satellite): alternating
//! read and mutation bursts on the scenario matrix's hub-star topology.
//!
//! Under a distance-mode NAP every sequenced mutation conservatively
//! flushes the cache (depths depend on the globally-perturbed
//! stationary state), so the hit rate must *collapse* across a mutation
//! burst and *recover* as the hot set is re-read — and the counters
//! must balance exactly: `hits + misses` equals the number of reads
//! that took the cached path. Every reply, hit or recomputed, is
//! checked bit-equal against a cache-bypass solo-engine oracle fed the
//! same sequence.

use nai::core::config::{CacheConfig, InferenceConfig, LoadShedPolicy, ServeConfig};
use nai::datasets::{Scale, TopologySpec};
use nai::models::{DepthClassifier, ModelKind};
use nai::serve::{NaiService, Op, Reply, Request};
use nai::stream::{DynamicGraph, StreamingEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const K: usize = 2;
const HOT: usize = 8; // hot-set size: the ids re-read every round

fn classifiers(feature_dim: usize, classes: usize) -> Vec<DepthClassifier> {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    (1..=K)
        .map(|d| DepthClassifier::new(ModelKind::Sgc, d, feature_dim, classes, &[8], 0.0, &mut rng))
        .collect()
}

#[test]
fn hit_rate_collapses_during_mutation_bursts_and_recovers() {
    let scenario = TopologySpec::named("hub-star", Scale::Test)
        .unwrap()
        .build();
    let g = &scenario.graph;
    let engine = || {
        StreamingEngine::with_lambda2(
            DynamicGraph::from_graph(g),
            classifiers(g.feature_dim(), g.num_classes),
            None,
            0.5,
            0.9,
        )
    };
    let infer = InferenceConfig::distance(0.5, 1, K);
    let service = NaiService::new(
        vec![engine(), engine()],
        infer,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_cap: 64,
            shed: LoadShedPolicy {
                trigger_fraction: 1.0,
                t_max_cap: 0, // shedding off: depths must match the oracle
            },
            cache: CacheConfig::on(256),
        },
    )
    .unwrap();
    let mut oracle = engine();
    let mut mutations = 0u64;

    // One closed-loop round over the hot set; returns nothing — every
    // reply is asserted bit-equal to the oracle in place.
    let read_round = |service: &NaiService, oracle: &mut StreamingEngine, mutations: u64| {
        for node in 0..HOT as u32 {
            let expected = oracle.infer_nodes(&[node], &infer);
            match service
                .call(Request {
                    op: Op::Infer { nodes: vec![node] },
                    shard: None,
                })
                .unwrap()
            {
                Reply::Infer {
                    applied_seq,
                    results,
                    ..
                } => {
                    assert_eq!(applied_seq, mutations);
                    assert_eq!(results[0].node, node);
                    assert_eq!(results[0].prediction, expected[0].0);
                    assert_eq!(results[0].depth, expected[0].1);
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
    };

    // Round A: cold cache — every hot read misses.
    read_round(&service, &mut oracle, mutations);
    let a = service.metrics();
    assert_eq!((a.cache_hits, a.cache_misses), (0, HOT as u64));

    // Round B: warm — every hot read hits.
    read_round(&service, &mut oracle, mutations);
    let b = service.metrics();
    assert_eq!((b.cache_hits, b.cache_misses), (HOT as u64, HOT as u64));

    // Mutation burst: leaf-to-leaf edges that cannot already exist in a
    // hub-star (leaves only attach to hubs), so each is genuinely
    // sequenced as a graph change and flushes the cache.
    let n = g.num_nodes() as u32;
    for i in 0..4u32 {
        let (u, v) = (n - 1 - i, n - 10 - i);
        match service
            .call(Request {
                op: Op::ObserveEdge { u, v },
                shard: None,
            })
            .unwrap()
        {
            Reply::Edge { added, .. } => assert!(added, "({u}, {v}) must be a new edge"),
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(oracle.observe_edge(u, v));
        mutations += 1;
    }
    let flushed = service.metrics();
    assert!(
        flushed.cache_invalidated >= HOT as u64,
        "the flush dropped the whole hot set, got {flushed:?}"
    );

    // Round C: the burst collapsed the hit rate — all misses again.
    read_round(&service, &mut oracle, mutations);
    let c = service.metrics();
    assert_eq!(
        (c.cache_hits, c.cache_misses),
        (HOT as u64, 2 * HOT as u64),
        "no read across the burst may serve a pre-mutation answer"
    );

    // Round D: recovered — the re-read hot set hits again.
    read_round(&service, &mut oracle, mutations);
    let d = service.metrics();
    assert_eq!(
        (d.cache_hits, d.cache_misses),
        (2 * HOT as u64, 2 * HOT as u64)
    );

    // Counter consistency: every read in this test took the cached
    // path, so hits + misses is exactly the read count.
    assert_eq!(d.cache_hits + d.cache_misses, 4 * HOT as u64);
    service.shutdown();
}
