//! Baseline integration: every method of Table V trains against the same
//! teacher and produces the cost signature the paper reports.

use nai::baselines::glnn::{Glnn, GlnnConfig};
use nai::baselines::nosmog::{Nosmog, NosmogConfig};
use nai::baselines::pprgo::{PprGo, PprGoConfig};
use nai::baselines::quantization::{QuantizedModel, QuantizedNai};
use nai::baselines::tinygnn::{TinyGnn, TinyGnnConfig};
use nai::datasets::{load, DatasetId, Scale};
use nai::nn::trainer::TrainConfig;
use nai::prelude::*;

fn setup() -> (nai::datasets::Dataset, TrainedNai) {
    let ds = load(DatasetId::ArxivProxy, Scale::Test);
    let cfg = PipelineConfig {
        k: 3,
        hidden: vec![32],
        epochs: 50,
        patience: 12,
        distill: nai::core::config::DistillConfig {
            epochs: 12,
            ensemble_r: 2,
            ..Default::default()
        },
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, false);
    (ds, t)
}

fn kd_train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 60,
        patience: 15,
        adam: nai::nn::adam::Adam::new(0.02, 0.0),
        ..TrainConfig::default()
    }
}

#[test]
fn all_baselines_beat_chance_and_show_their_cost_signature() {
    let (ds, trained) = setup();
    let test = &ds.split.test;
    let labels = &ds.graph.labels;
    let chance = 1.0 / ds.graph.num_classes as f64;

    let vanilla = trained
        .engine
        .infer(test, labels, &InferenceConfig::fixed(3));

    // GLNN: zero FP MACs.
    let glnn = Glnn::distill(
        &trained,
        &ds.graph,
        &ds.split,
        &GlnnConfig {
            train: kd_train_cfg(),
            ..GlnnConfig::default()
        },
        1,
    );
    let glnn_run = glnn.infer(&ds.graph, test, labels, 100);
    assert!(glnn_run.report.accuracy > chance + 0.1);
    assert_eq!(glnn_run.report.macs.feature_processing(), 0);

    // NOSMOG: small, nonzero FP cost; usually better than GLNN
    // inductively.
    let nosmog = Nosmog::distill(
        &trained,
        &ds.graph,
        &ds.split,
        &NosmogConfig {
            train: kd_train_cfg(),
            ..NosmogConfig::default()
        },
        2,
    );
    let nosmog_run = nosmog.infer(&ds.graph, test, labels, 100);
    assert!(nosmog_run.report.accuracy > chance + 0.1);
    assert!(nosmog_run.report.macs.feature_processing() > 0);
    assert!(nosmog_run.report.macs.feature_processing() < vanilla.report.macs.feature_processing());

    // TinyGNN: 1-hop only, attention-heavy.
    let mut tiny = TinyGnn::distill(
        &trained,
        &ds.graph,
        &ds.split,
        &TinyGnnConfig {
            epochs: 20,
            ..TinyGnnConfig::default()
        },
        3,
    );
    let tiny_run = tiny.infer(&ds.graph, test, labels, 100, 4);
    assert!(tiny_run.report.accuracy > chance + 0.1);
    assert!(tiny_run.report.macs.propagation > 0);

    // Quantization: identical propagation cost to vanilla, near-identical
    // accuracy.
    let quant = QuantizedModel::from_engine(&trained.engine);
    let quant_run = quant.infer(&trained.engine, test, labels, 500);
    assert_eq!(
        quant_run.report.macs.propagation,
        vanilla.report.macs.propagation
    );
    assert!((quant_run.report.accuracy - vanilla.report.accuracy).abs() < 0.05);

    // PPRGo (extension): its push cost is bounded by 1/(α·ε) pushes and
    // independent of k — unlike frontier propagation, whose cost grows
    // with depth. Its classification MACs scale with top-k (the
    // signature that distinguishes it from every Table V method).
    let pprgo = PprGo::train(
        &ds.graph,
        &ds.split,
        &PprGoConfig {
            epochs: 40,
            ..PprGoConfig::default()
        },
    );
    let pprgo_run = pprgo.infer_batched(&ds.graph, test, labels, 100);
    assert!(pprgo_run.report.accuracy > chance + 0.1);
    assert!(pprgo_run.report.macs.propagation > 0);
    assert!(
        pprgo_run.report.macs.classification > pprgo_run.report.macs.propagation / 2,
        "top-k MLP evaluations should be a first-order cost for PPRGo"
    );

    // Quantized adaptive (extension): NAP exits identical to f32.
    let qnai = QuantizedNai::from_engine(&trained.engine);
    let cfg = InferenceConfig::distance(0.6, 1, 3);
    let f32_adaptive = trained.engine.infer(test, labels, &cfg);
    let q_adaptive = qnai.infer(&trained.engine, test, labels, &cfg);
    assert_eq!(f32_adaptive.depths, q_adaptive.depths);
    assert!((q_adaptive.report.accuracy - f32_adaptive.report.accuracy).abs() < 0.05);
}

#[test]
fn nai_dominates_glnn_on_inductive_accuracy() {
    // The paper's core comparison: GLNN is fastest but loses accuracy on
    // unseen nodes because it ignores topology; NAI keeps the accuracy.
    let (ds, trained) = setup();
    let glnn = Glnn::distill(
        &trained,
        &ds.graph,
        &ds.split,
        &GlnnConfig {
            train: kd_train_cfg(),
            ..GlnnConfig::default()
        },
        5,
    );
    let glnn_acc = glnn
        .infer(&ds.graph, &ds.split.test, &ds.graph.labels, 100)
        .report
        .accuracy;
    let nai_acc = trained
        .engine
        .infer(
            &ds.split.test,
            &ds.graph.labels,
            &InferenceConfig::distance(1.0, 1, 3),
        )
        .report
        .accuracy;
    assert!(
        nai_acc > glnn_acc - 0.02,
        "NAI {nai_acc} should not lose to GLNN {glnn_acc} inductively"
    );
}
