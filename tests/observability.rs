//! Integration: the request-lifecycle observability surface over real
//! sockets.
//!
//! Boots `nai::serve` on an ephemeral port, drives closed-loop
//! single-node inference traffic, and checks the three scrape
//! surfaces against each other:
//!
//! * **stage accounting** — the per-stage span histograms tile the
//!   end-to-end latency: the sum of per-stage means lands within 10%
//!   of the mean e2e latency (the spans are cut from the same clock
//!   readings, so the only slack is engine-internal time not
//!   attributed to propagation/NAP/classify — and histogram
//!   `mean`s are exact, not bucketed);
//! * **Prometheus exposition** — `/metrics?format=prom` is valid
//!   0.0.4 text: typed families, cumulative `le` buckets ending in
//!   `+Inf`, exact `_sum`/`_count`, labeled stage series;
//! * **flight recorder** — `/debug/slow` returns well-formed traces,
//!   slowest first, each with the full seven-stage timeline;
//! * **batch anatomy** — every dispatched batch is accounted to
//!   exactly one close reason.

use nai::core::config::{CacheConfig, InferenceConfig, LoadShedPolicy, ServeConfig};
use nai::models::{DepthClassifier, ModelKind};
use nai::serve::{HttpClient, Json, NaiService, Server};
use nai::stream::{DynamicGraph, StreamingEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const F: usize = 6;
const K: usize = 2;
const CLASSES: usize = 4;
const SEED_NODES: usize = 90;
const REQUESTS: usize = 40;

fn engine() -> StreamingEngine {
    let g = nai::graph::generators::generate(
        &nai::graph::generators::GeneratorConfig {
            num_nodes: SEED_NODES,
            num_classes: CLASSES,
            feature_dim: F,
            avg_degree: 5.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(41),
    );
    let mut rng = StdRng::seed_from_u64(42);
    let classifiers: Vec<DepthClassifier> = (1..=K)
        .map(|d| DepthClassifier::new(ModelKind::Sgc, d, F, CLASSES, &[8], 0.0, &mut rng))
        .collect();
    StreamingEngine::with_lambda2(DynamicGraph::from_graph(&g), classifiers, None, 0.5, 0.9)
}

const STAGES: [&str; 7] = [
    "parse",
    "queue_wait",
    "batch_wait",
    "engine_propagation",
    "engine_nap",
    "engine_classify",
    "serialize",
];

#[test]
fn stage_spans_tile_e2e_latency_and_scrape_surfaces_agree() {
    let service = NaiService::new(
        vec![engine(), engine()],
        InferenceConfig::distance(0.5, 1, K),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_cap: 64,
            shed: LoadShedPolicy {
                trigger_fraction: 1.0,
                t_max_cap: 0,
            },
            cache: CacheConfig::off(), // every request takes the full pipeline
        },
    )
    .unwrap();
    let server = Server::start(Arc::new(service), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Closed-loop single-node reads: one prediction per request, so
    // the per-prediction latency histogram and the per-request stage
    // histograms describe the same population.
    let mut rng = StdRng::seed_from_u64(4242);
    let mut client = HttpClient::connect(addr).unwrap();
    for _ in 0..REQUESTS {
        let node = rng.gen_range(0..SEED_NODES as u32);
        let line = format!("{{\"op\": \"infer\", \"nodes\": [{node}]}}\n");
        let (status, body) = client.request("POST", "/v1", Some(&line)).unwrap();
        assert_eq!(status, 200, "body: {body}");
    }

    // --- JSON scrape: stage accounting ---------------------------------
    let (status, body) = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let m = Json::parse(body.trim()).unwrap();
    assert_eq!(
        m.get("served").and_then(Json::as_u64),
        Some(REQUESTS as u64)
    );

    let stages = m.get("stages").expect("stages section");
    let mut stage_mean_sum_us = 0.0;
    for stage in STAGES {
        let entry = stages.get(stage).unwrap_or_else(|| panic!("stage {stage}"));
        assert_eq!(
            entry.get("count").and_then(Json::as_u64),
            Some(REQUESTS as u64),
            "every traced request records every stage ({stage})"
        );
        stage_mean_sum_us += entry
            .get("mean_us")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("stage {stage} mean_us"));
    }
    let e2e_mean_us = m
        .get("latency_us")
        .and_then(|l| l.get("mean"))
        .and_then(Json::as_f64)
        .expect("latency_us.mean");
    assert!(e2e_mean_us > 0.0);
    let drift = (stage_mean_sum_us - e2e_mean_us).abs() / e2e_mean_us;
    assert!(
        drift <= 0.10,
        "stage means must tile the e2e mean within 10%: \
         sum {stage_mean_sum_us:.1}us vs e2e {e2e_mean_us:.1}us (drift {:.1}%)",
        drift * 100.0
    );

    // --- batch anatomy -------------------------------------------------
    let batches = m.get("batches").and_then(Json::as_u64).unwrap();
    let batch = m.get("batch").expect("batch section");
    let on_max = batch
        .get("closed_on_max_batch")
        .and_then(Json::as_u64)
        .unwrap();
    let on_deadline = batch
        .get("closed_on_deadline")
        .and_then(Json::as_u64)
        .unwrap();
    let on_idle = batch.get("closed_on_idle").and_then(Json::as_u64).unwrap();
    let on_shutdown = batch
        .get("closed_on_shutdown")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(
        on_max + on_deadline + on_idle + on_shutdown,
        batches,
        "every batch closes for exactly one reason"
    );
    assert!(batch.get("mean_size").and_then(Json::as_f64).unwrap() >= 1.0);

    // --- Prometheus exposition -----------------------------------------
    let (status, prom) = client.request("GET", "/metrics?format=prom", None).unwrap();
    assert_eq!(status, 200);
    assert!(prom.contains("# TYPE nai_requests_served_total counter"));
    assert!(prom.contains("# TYPE nai_request_duration_seconds histogram"));
    assert!(prom.contains("nai_request_duration_seconds_bucket{le=\"+Inf\"}"));
    let count_line = prom
        .lines()
        .find(|l| l.starts_with("nai_request_duration_seconds_count"))
        .expect("histogram _count series");
    assert_eq!(
        count_line.split_whitespace().last(),
        Some(format!("{REQUESTS}").as_str()),
        "prom _count must equal the JSON surface's sample count"
    );
    for stage in STAGES {
        let needle = format!("nai_request_stage_duration_seconds_count{{stage=\"{stage}\"}}");
        let line = prom
            .lines()
            .find(|l| l.starts_with(needle.as_str()))
            .unwrap_or_else(|| panic!("missing stage series {stage}"));
        assert_eq!(
            line.split_whitespace().last(),
            Some(format!("{REQUESTS}").as_str())
        );
    }
    assert!(prom.contains("nai_batch_closed_total{reason=\"max_batch\"}"));
    assert!(prom.contains("nai_batch_closed_total{reason=\"deadline\"}"));
    assert!(prom.contains("nai_batch_closed_total{reason=\"idle\"}"));
    assert!(prom.contains("nai_batch_closed_total{reason=\"shutdown\"}"));
    // Cumulative `le` buckets: counts never decrease along a series.
    let bucket_counts: Vec<u64> = prom
        .lines()
        .filter(|l| l.starts_with("nai_request_duration_seconds_bucket"))
        .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
        .collect();
    assert!(!bucket_counts.is_empty());
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "le buckets must be cumulative: {bucket_counts:?}"
    );
    assert_eq!(
        *bucket_counts.last().unwrap(),
        REQUESTS as u64,
        "+Inf bucket"
    );

    // --- flight recorder -----------------------------------------------
    let (status, slow) = client.request("GET", "/debug/slow", None).unwrap();
    assert_eq!(status, 200);
    let slow = Json::parse(slow.trim()).unwrap();
    let traces = slow.get("traces").and_then(Json::as_arr).expect("traces");
    assert!(!traces.is_empty(), "forty requests must leave slow traces");
    assert_eq!(
        slow.get("count").and_then(Json::as_u64),
        Some(traces.len() as u64)
    );
    let mut last_total = f64::INFINITY;
    for t in traces {
        let total = t.get("total_us").and_then(Json::as_f64).unwrap();
        assert!(total <= last_total, "traces must be sorted slowest-first");
        last_total = total;
        assert!(t.get("trace_id").and_then(Json::as_u64).unwrap() > 0);
        let spans = t.get("stages_us").expect("stage timeline");
        let span_sum: f64 = STAGES
            .iter()
            .map(|s| spans.get(s).and_then(Json::as_f64).unwrap())
            .sum();
        assert!(
            span_sum <= total * 1.001,
            "a trace's spans cannot exceed its total: {span_sum} > {total}"
        );
        let reason = t.get("close_reason").and_then(Json::as_str).unwrap();
        assert!(
            ["max_batch", "deadline", "idle", "shutdown", "cache_hit"].contains(&reason),
            "unknown close reason {reason}"
        );
    }

    server.shutdown();
}
