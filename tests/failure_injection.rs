//! Failure injection: degenerate configurations and hostile inputs must
//! fail loudly (typed errors / panics with clear messages), never corrupt
//! results silently.

use nai::datasets::{load, DatasetId, Scale};
use nai::graph::generators::{generate, GeneratorConfig};
use nai::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_trained() -> (nai::datasets::Dataset, TrainedNai) {
    let ds = load(DatasetId::ArxivProxy, Scale::Test);
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![8],
        epochs: 8,
        use_single_scale: false,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, false);
    (ds, t)
}

#[test]
fn tmin_equal_tmax_degenerates_to_fixed_depth() {
    let (ds, t) = quick_trained();
    let a = t.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig {
            t_min: 2,
            t_max: 2,
            nap: NapMode::Distance { ts: f32::INFINITY },
            batch_size: 64,
            parallel_spmm: false,
        },
    );
    let b = t
        .engine
        .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(2));
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.depths, b.depths);
}

#[test]
fn nan_features_do_not_crash_inference() {
    // A node with NaN features must not bring the engine down; its own
    // prediction is garbage (NaN logits → argmax 0) but neighbors further
    // than T_max hops away are unaffected.
    let mut g = generate(
        &GeneratorConfig {
            num_nodes: 120,
            feature_dim: 6,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(2),
    );
    g.features.set(0, 0, f32::NAN);
    let split = InductiveSplit::random(120, 0.5, 0.2, &mut StdRng::seed_from_u64(3));
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![],
        epochs: 5,
        use_single_scale: false,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
    let run = t
        .engine
        .infer(&split.test, &g.labels, &InferenceConfig::fixed(2));
    assert_eq!(run.predictions.len(), split.test.len());
}

#[test]
#[should_panic(expected = "invalid inference config")]
fn zero_batch_size_rejected() {
    let (ds, t) = quick_trained();
    let _ = t.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig {
            batch_size: 0,
            ..InferenceConfig::fixed(2)
        },
    );
}

#[test]
#[should_panic]
fn out_of_range_test_node_rejected() {
    let (ds, t) = quick_trained();
    let bad = vec![ds.graph.num_nodes() as u32 + 5];
    let _ = t
        .engine
        .infer(&bad, &ds.graph.labels, &InferenceConfig::fixed(2));
}

#[test]
fn split_with_everything_in_test_still_trains_on_rest() {
    // Extreme inductive setting: only 10% observed.
    let g = generate(
        &GeneratorConfig {
            num_nodes: 300,
            feature_dim: 8,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(4),
    );
    let split = InductiveSplit::random(300, 0.07, 0.03, &mut StdRng::seed_from_u64(5));
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![16],
        epochs: 20,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
    let run = t.engine.infer(
        &split.test,
        &g.labels,
        &InferenceConfig::distance(1.0, 1, 2),
    );
    assert_eq!(run.predictions.len(), split.test.len());
    assert!(run.report.accuracy > 1.0 / g.num_classes as f64);
}

#[test]
fn duplicate_test_nodes_get_consistent_predictions() {
    let (ds, t) = quick_trained();
    let node = ds.split.test[0];
    let run = t.engine.infer(
        &[node, node, node],
        &ds.graph.labels,
        &InferenceConfig::distance(1.0, 1, 2),
    );
    assert_eq!(run.predictions[0], run.predictions[1]);
    assert_eq!(run.predictions[1], run.predictions[2]);
    assert_eq!(run.depths[0], run.depths[2]);
}

#[test]
fn propagate_only_matches_engine_histories() {
    let (ds, t) = quick_trained();
    let batch = &ds.split.test[..8.min(ds.split.test.len())];
    let (history, macs, _) = t.engine.propagate_only(batch, 2);
    assert_eq!(history.len(), 3);
    for h in &history {
        assert_eq!(h.rows(), batch.len());
    }
    assert!(macs.propagation > 0);
    // Raw level must equal the graph's features for those nodes.
    for (r, &node) in batch.iter().enumerate() {
        assert_eq!(history[0].row(r), ds.graph.features.row(node as usize));
    }
}

#[test]
fn gate_training_on_tiny_label_budget_survives() {
    // Only 12 labeled nodes: gates must still train without panicking.
    let g = generate(
        &GeneratorConfig {
            num_nodes: 100,
            feature_dim: 6,
            num_classes: 3,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(6),
    );
    let split = InductiveSplit {
        train: (0..12u32).collect(),
        val: (12..20u32).collect(),
        test: (20..100u32).collect(),
    };
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![],
        epochs: 5,
        gate_epochs: 3,
        use_single_scale: false,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, true);
    let run = t
        .engine
        .infer(&split.test, &g.labels, &InferenceConfig::gate(1, 2));
    assert_eq!(run.predictions.len(), 80);
}
