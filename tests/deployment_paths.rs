//! Integration: one trained model, every deployment path.
//!
//! Trains a single NAI pipeline, checkpoints it to disk, and verifies
//! that all four deployment paths agree where they must:
//!
//! * static f32 engine (reference);
//! * checkpoint-restored static engine — identical predictions;
//! * streaming engine over the same frozen graph — identical predictions;
//! * INT8-quantized adaptive deployment — identical *depths*, accuracy
//!   within quantization tolerance;
//! * parallel inference — bit-identical with serial.

use nai::baselines::quantization::QuantizedNai;
use nai::datasets::{load, DatasetId, Scale};
use nai::prelude::*;

fn trained() -> (nai::datasets::Dataset, TrainedNai) {
    let ds = load(DatasetId::ArxivProxy, Scale::Test);
    let cfg = PipelineConfig {
        k: 3,
        hidden: vec![16],
        epochs: 30,
        patience: 10,
        gate_epochs: 8,
        distill: DistillConfig {
            epochs: 8,
            ensemble_r: 2,
            ..Default::default()
        },
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, true);
    (ds, t)
}

#[test]
fn every_deployment_path_agrees() {
    let (ds, t) = trained();
    let cfg = InferenceConfig::distance(0.6, 1, 3);
    let reference = t.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
    assert!(reference.report.accuracy > 0.5);

    // Checkpoint roundtrip through the filesystem.
    let dir = std::env::temp_dir().join("nai_deploy_paths");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.naic");
    ModelCheckpoint::from_engine(&t.engine, 0.5)
        .save(&path)
        .unwrap();
    let ckpt = ModelCheckpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // (a) Restored static engine.
    let restored = ckpt.deploy(&ds.graph);
    let from_ckpt = restored.infer(&ds.split.test, &ds.graph.labels, &cfg);
    assert_eq!(reference.predictions, from_ckpt.predictions);
    assert_eq!(reference.depths, from_ckpt.depths);

    // (b) Streaming engine over the frozen graph.
    let mut streaming =
        StreamingEngine::from_checkpoint(&ckpt, DynamicGraph::from_graph(&ds.graph));
    let stream_res = streaming.infer_nodes(&ds.split.test, &cfg);
    let (spreds, sdepths): (Vec<usize>, Vec<usize>) = stream_res.into_iter().unzip();
    assert_eq!(reference.predictions, spreds);
    assert_eq!(reference.depths, sdepths);

    // (c) Quantized adaptive deployment: identical exits, near accuracy.
    let qnai = QuantizedNai::from_engine(&t.engine);
    let q = qnai.infer(&t.engine, &ds.split.test, &ds.graph.labels, &cfg);
    assert_eq!(reference.depths, q.depths);
    assert!(
        (q.report.accuracy - reference.report.accuracy).abs() < 0.05,
        "quantized {} vs f32 {}",
        q.report.accuracy,
        reference.report.accuracy
    );

    // (d) Parallel inference: bit-identical.
    let par = t
        .engine
        .infer_parallel(&ds.split.test, &ds.graph.labels, &cfg, 4);
    assert_eq!(reference.predictions, par.predictions);
    assert_eq!(reference.depths, par.depths);
    assert_eq!(reference.report.macs.total(), par.report.macs.total());
}

#[test]
fn streaming_deployment_survives_growth_and_stays_sane() {
    let (ds, t) = trained();
    let ckpt = ModelCheckpoint::from_engine(&t.engine, 0.5);
    let mut engine = StreamingEngine::from_checkpoint(&ckpt, DynamicGraph::from_graph(&ds.graph));
    let cfg = InferenceConfig {
        batch_size: 10,
        ..InferenceConfig::distance(0.6, 1, 3)
    };
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let f = ds.graph.feature_dim();
    let mut served = 0usize;
    for _ in 0..35 {
        let feats: Vec<f32> = (0..f).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n = engine.graph().num_nodes();
        let nbrs: Vec<u32> = (0..3).map(|_| rng.gen_range(0..n) as u32).collect();
        engine.ingest(&feats, &nbrs);
        if engine.pending().len() >= cfg.batch_size {
            served += engine.flush(&cfg).len();
        }
    }
    served += engine.flush(&cfg).len();
    assert_eq!(served, 35);
    assert_eq!(engine.stats().count(), 35);
    assert!(engine.stats().p99() >= engine.stats().p50());
    // The deployment graph grew by exactly the arrivals.
    assert_eq!(engine.graph().num_nodes(), ds.graph.num_nodes() + 35);
}
