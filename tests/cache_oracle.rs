//! Property test: the prediction cache is invisible to correctness.
//!
//! For random closed-loop interleavings of ingests, edge arrivals, and
//! reads over shard counts {1, 2, 4} with the cache ON, every reply —
//! cached or computed — must be bit-equal (prediction, depth,
//! `applied_seq`) to a cache-bypass solo [`StreamingEngine`] oracle fed
//! the same sequence. The property runs under both a distance-mode NAP
//! (every mutation flushes the cache) and a fixed-depth NAP (mutations
//! invalidate only the k-hop in-neighborhood), so both invalidation
//! paths are exercised against the same oracle.

use nai::core::config::{CacheConfig, InferenceConfig, LoadShedPolicy, ServeConfig};
use nai::models::{DepthClassifier, ModelKind};
use nai::serve::{NaiService, Op, Reply, Request};
use nai::stream::{DynamicGraph, StreamingEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const F: usize = 5;
const K: usize = 2;
const CLASSES: usize = 3;
const SEED_NODES: usize = 50;

/// Deterministic replica factory: every call yields a bit-identical
/// engine, so service replicas and the oracle agree at boot.
fn engine() -> StreamingEngine {
    let g = nai::graph::generators::generate(
        &nai::graph::generators::GeneratorConfig {
            num_nodes: SEED_NODES,
            num_classes: CLASSES,
            feature_dim: F,
            avg_degree: 4.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(97),
    );
    let mut rng = StdRng::seed_from_u64(98);
    let classifiers: Vec<DepthClassifier> = (1..=K)
        .map(|d| DepthClassifier::new(ModelKind::Sgc, d, F, CLASSES, &[6], 0.0, &mut rng))
        .collect();
    StreamingEngine::with_lambda2(DynamicGraph::from_graph(&g), classifiers, None, 0.5, 0.9)
}

fn serve_cfg(workers: usize, cache: CacheConfig) -> ServeConfig {
    ServeConfig {
        workers,
        max_batch: 8,
        max_wait: Duration::from_millis(1),
        queue_cap: 64,
        shed: LoadShedPolicy {
            trigger_fraction: 1.0,
            t_max_cap: 0, // shedding off: depths must match the oracle
        },
        cache,
    }
}

/// Random valid op script (same generator as the replica-convergence
/// suite): every op references only node ids that exist at that point.
fn script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes = SEED_NODES as u32;
    (0..len)
        .map(|_| match rng.gen_range(0..4u8) {
            0 => {
                let degree = rng.gen_range(0..3usize);
                let neighbors: Vec<u32> = (0..degree).map(|_| rng.gen_range(0..nodes)).collect();
                nodes += 1;
                Op::Ingest {
                    features: (0..F).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                    neighbors,
                }
            }
            1 => {
                let u = rng.gen_range(0..nodes);
                let v = (u + 1 + rng.gen_range(0..nodes - 1)) % nodes;
                Op::ObserveEdge { u, v }
            }
            _ => Op::Infer {
                // Two-node reads with repetition pressure: a small id
                // range keeps re-reads (and therefore cache hits)
                // likely inside short scripts.
                nodes: (0..2).map(|_| rng.gen_range(0..nodes)).collect(),
            },
        })
        .collect()
}

/// Drives `ops` through a cache-enabled service and a cache-bypass solo
/// oracle in lockstep; every reply must agree bit for bit, and every
/// read's `applied_seq` must equal the count of mutations sequenced so
/// far (the closed loop leaves nothing in flight between ops).
fn run_and_check(shards: usize, infer: InferenceConfig, ops: &[Op]) -> Result<u64, TestCaseError> {
    let engines: Vec<StreamingEngine> = (0..shards).map(|_| engine()).collect();
    let service = NaiService::new(engines, infer, serve_cfg(shards, CacheConfig::on(1024)))
        .map_err(TestCaseError::fail)?;
    let mut oracle = engine();
    let mut mutations = 0u64; // every Ingest/ObserveEdge is sequenced
    for op in ops {
        let reply = service
            .call(Request {
                op: op.clone(),
                shard: None,
            })
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        match (op, reply) {
            (
                Op::Infer { nodes },
                Reply::Infer {
                    applied_seq,
                    results,
                    ..
                },
            ) => {
                let expected = oracle.infer_nodes(nodes, &infer);
                prop_assert_eq!(applied_seq, mutations, "read at the current sequence point");
                prop_assert_eq!(results.len(), nodes.len());
                for ((r, &node), &(pred, depth)) in results.iter().zip(nodes).zip(&expected) {
                    prop_assert_eq!(r.node, node);
                    prop_assert_eq!(r.prediction, pred);
                    prop_assert_eq!(r.depth, depth);
                }
            }
            (
                Op::Ingest {
                    features,
                    neighbors,
                },
                Reply::Ingest {
                    applied_seq,
                    node,
                    prediction,
                    depth,
                    ..
                },
            ) => {
                mutations += 1;
                let id = oracle.ingest(features, neighbors);
                let expected = oracle.flush(&infer);
                prop_assert_eq!(applied_seq, mutations);
                prop_assert_eq!(node, id, "globally sequential id");
                prop_assert_eq!(prediction, expected[0].prediction);
                prop_assert_eq!(depth, expected[0].depth);
            }
            (Op::ObserveEdge { u, v }, Reply::Edge { added, .. }) => {
                // Duplicate edges are still sequenced (added == false
                // advances the clock without changing the graph).
                mutations += 1;
                prop_assert_eq!(added, oracle.observe_edge(*u, *v));
            }
            (op, other) => {
                return Err(TestCaseError::fail(format!(
                    "op {op:?} answered with {other:?}"
                )))
            }
        }
    }
    let hits = service.metrics().cache_hits;
    service.shutdown();
    Ok(hits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cached_replies_are_bit_equal_to_the_cache_bypass_oracle(
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        seed in any::<u64>(),
        len in 12..28usize,
    ) {
        let ops = script(seed, len);
        // Distance-mode NAP: depths depend on the global stationary, so
        // every mutation conservatively flushes the whole cache.
        run_and_check(shards, InferenceConfig::distance(0.5, 1, K), &ops)?;
        // Fixed-depth NAP: inference is local, so mutations invalidate
        // only the k-hop in-neighborhood and distant entries keep
        // serving hits.
        run_and_check(shards, InferenceConfig::fixed(K), &ops)?;
    }
}

/// Zipf-skewed read-only traffic re-reads a hot set, so the cache must
/// actually hit — a cache that silently never hits would pass the
/// bit-equality property above while being dead weight.
#[test]
fn zipf_reads_hit_the_cache_and_still_match_the_oracle() {
    use nai::serve::{Arrivals, Sampling, WorkloadSampler, WorkloadSpec};
    let spec = WorkloadSpec {
        name: "zipf-read-only".into(),
        read_fraction: 1.0,
        edge_fraction: 0.0,
        sampling: Sampling::Zipf { exponent: 1.1 },
        nodes_per_read: 2,
        ingest_degree: 3,
        arrivals: Arrivals::Closed,
    };
    spec.validate().unwrap();
    let mut sampler = WorkloadSampler::new(spec, 0x5EED);
    let service = NaiService::new(
        vec![engine(), engine()],
        InferenceConfig::distance(0.5, 1, K),
        serve_cfg(2, CacheConfig::on(1024)),
    )
    .unwrap();
    let mut oracle = engine();
    for _ in 0..200 {
        let op = sampler.next_op(SEED_NODES as u32, F);
        let Op::Infer { nodes } = &op else {
            panic!("read-only workload emitted a mutation: {op:?}")
        };
        let expected = oracle.infer_nodes(nodes, &InferenceConfig::distance(0.5, 1, K));
        match service
            .call(Request {
                op: op.clone(),
                shard: None,
            })
            .unwrap()
        {
            Reply::Infer {
                applied_seq,
                results,
                ..
            } => {
                assert_eq!(applied_seq, 0, "no mutations in this workload");
                let got: Vec<(usize, usize)> =
                    results.iter().map(|r| (r.prediction, r.depth)).collect();
                assert_eq!(got, expected);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    let m = service.metrics();
    assert!(
        m.cache_hits > 0,
        "a hot zipf read set must produce hits, got {m:?}"
    );
    assert_eq!(
        m.cache_hits + m.cache_misses,
        200,
        "every read took the cached path exactly once"
    );
    service.shutdown();
}

/// End-to-end version of the k-hop invalidation walk under a fixed-depth
/// NAP: a mutation far outside a cached node's ball leaves the entry
/// serving hits at an advanced `applied_seq`; a nearby mutation evicts
/// it and the recomputed answer matches the oracle.
#[test]
fn distant_mutations_keep_fixed_nap_entries_hot_nearby_ones_evict() {
    const N: usize = 16;
    let path_engine = || {
        let mut d = DynamicGraph::new(F);
        let mut rng = StdRng::seed_from_u64(0xB00);
        let feat = |rng: &mut StdRng| -> Vec<f32> {
            (0..F).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
        };
        d.add_node(&feat(&mut rng), &[]);
        for v in 1..N as u32 {
            d.add_node(&feat(&mut rng), &[v - 1]);
        }
        let mut crng = StdRng::seed_from_u64(0xC1A55);
        let classifiers: Vec<DepthClassifier> = (1..=K)
            .map(|depth| {
                DepthClassifier::new(ModelKind::Sgc, depth, F, CLASSES, &[6], 0.0, &mut crng)
            })
            .collect();
        StreamingEngine::with_lambda2(d, classifiers, None, 0.5, 0.9)
    };
    let infer = InferenceConfig::fixed(K);
    let service = NaiService::new(
        vec![path_engine()],
        infer,
        serve_cfg(1, CacheConfig::on(64)),
    )
    .unwrap();
    let mut oracle = path_engine();
    let read = |nodes: Vec<u32>| Request {
        op: Op::Infer { nodes },
        shard: None,
    };
    let expect_infer = |reply: Reply| -> (u64, usize, usize) {
        match reply {
            Reply::Infer {
                applied_seq,
                results,
                ..
            } => (applied_seq, results[0].prediction, results[0].depth),
            other => panic!("unexpected reply {other:?}"),
        }
    };

    // Populate: node 0 is cached at seq 0.
    let (seq, pred, depth) = expect_infer(service.call(read(vec![0])).unwrap());
    let expected = oracle.infer_nodes(&[0], &infer);
    assert_eq!((seq, pred, depth), (0, expected[0].0, expected[0].1));
    assert_eq!(service.metrics().cache_misses, 1);

    // An edge 10 hops away: the walk's ball around {10, 12} never
    // reaches node 0, so the entry survives and the next read is a hit
    // — stamped with the *advanced* sequence number.
    assert!(matches!(
        service
            .call(Request {
                op: Op::ObserveEdge { u: 10, v: 12 },
                shard: None
            })
            .unwrap(),
        Reply::Edge { added: true, .. }
    ));
    assert!(oracle.observe_edge(10, 12));
    let (seq, hit_pred, hit_depth) = expect_infer(service.call(read(vec![0])).unwrap());
    let expected = oracle.infer_nodes(&[0], &infer);
    assert_eq!(seq, 1, "hit carries the current sequence point");
    assert_eq!((hit_pred, hit_depth), (expected[0].0, expected[0].1));
    assert_eq!(
        service.metrics().cache_hits,
        1,
        "distant mutation kept the entry"
    );

    // An edge one hop away: node 0 sits inside the ball around {1, 3},
    // so the entry is evicted and the read recomputes (miss), matching
    // the oracle's post-mutation answer.
    assert!(matches!(
        service
            .call(Request {
                op: Op::ObserveEdge { u: 1, v: 3 },
                shard: None
            })
            .unwrap(),
        Reply::Edge { added: true, .. }
    ));
    assert!(oracle.observe_edge(1, 3));
    let (seq, pred, depth) = expect_infer(service.call(read(vec![0])).unwrap());
    let expected = oracle.infer_nodes(&[0], &infer);
    assert_eq!(seq, 2);
    assert_eq!((pred, depth), (expected[0].0, expected[0].1));
    let m = service.metrics();
    assert_eq!(m.cache_hits, 1, "nearby mutation evicted the entry");
    assert_eq!(
        m.cache_misses, 2,
        "the populate read and the post-eviction read"
    );
    assert!(m.cache_invalidated >= 1);
    service.shutdown();
}
