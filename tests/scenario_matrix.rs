//! Scenario-matrix engine agreement (ISSUE 5 satellite): for every
//! topology the scenario matrix can generate, the streaming engine and
//! the batch (static) engine must produce the same predictions and
//! depth histograms under the same NAP mode.
//!
//! Reuses the oracle pattern of `tests/replica_convergence.rs`: a
//! deterministic classifier factory yields bit-identical weights for
//! both engines, so any disagreement is an engine defect, not a
//! training artifact. Fixed-depth and upper-bound modes share the
//! propagation arithmetic exactly and must match bit-for-bit (λ₂ is
//! handed to the streaming engine, as the serving layer does).
//! Distance mode compares against the stationary state, which the two
//! engines compute by different algorithms (incremental f64
//! accumulators vs. per-component direct form, equal only to ~1e-4 —
//! see `nai-stream`'s `static_nodes_match_core_engine_across_nap_modes`),
//! so a near-threshold node may exit at a different layer; such flips
//! must be rare (≤ 2%) and must always come with a depth flip. The two
//! stationary algorithms are only comparable at all on *connected*
//! graphs (the static form normalizes per component, the incremental
//! form globally — the precedent set by
//! `flushed_arrivals_match_static_engine_on_final_graph`), so the
//! distance comparison runs on the matrix's connected topologies
//! (hub-star and small-world are connected by construction) and the
//! test asserts it actually ran.

use nai::core::config::{InferenceConfig, NapMode};
use nai::core::inference::NaiEngine;
use nai::core::stationary::StationaryState;
use nai::datasets::{Scale, TopologySpec};
use nai::graph::{normalized_adjacency, Convolution};
use nai::models::{DepthClassifier, ModelKind};
use nai::stream::{DynamicGraph, StreamingEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 2;

/// Deterministic classifier factory: every call yields bit-identical
/// weights, so the static and streaming engines agree at boot.
fn classifiers(feature_dim: usize, classes: usize) -> Vec<DepthClassifier> {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    (1..=K)
        .map(|d| DepthClassifier::new(ModelKind::Sgc, d, feature_dim, classes, &[8], 0.0, &mut rng))
        .collect()
}

fn depth_histogram(depths: &[usize]) -> Vec<u64> {
    let mut hist = vec![0u64; K + 1];
    for &d in depths {
        hist[d] += 1;
    }
    hist
}

#[test]
fn streaming_and_batch_engines_agree_on_every_scenario_topology() {
    let mut distance_runs = 0usize;
    for spec in TopologySpec::matrix(Scale::Test) {
        let scenario = spec.build();
        let g = &scenario.graph;
        let connected = nai::graph::components::connected_components(&g.adj).count == 1;
        let static_engine = NaiEngine::new(
            g,
            normalized_adjacency(&g.adj, Convolution::Symmetric),
            StationaryState::compute(&g.adj, &g.features, 0.5),
            classifiers(g.feature_dim(), g.num_classes),
            None,
        );
        // λ₂ handed over (the shard hand-off path), so upper-bound depth
        // assignment is a shared deterministic function of degree.
        let mut streaming = StreamingEngine::with_lambda2(
            DynamicGraph::from_graph(g),
            classifiers(g.feature_dim(), g.num_classes),
            None,
            0.5,
            static_engine.lambda2(),
        );
        let nodes = &scenario.split.test;

        for cfg in [
            InferenceConfig::fixed(K),
            InferenceConfig::upper_bound(0.5, 1, K),
            InferenceConfig::distance(0.4, 1, K),
        ] {
            if matches!(cfg.nap, NapMode::Distance { .. }) && !connected {
                continue; // stationary states not comparable (see header)
            }
            let stat = static_engine.infer(nodes, &g.labels, &cfg);
            let stream = streaming.infer_nodes(nodes, &cfg);
            let (preds, depths): (Vec<usize>, Vec<usize>) = stream.into_iter().unzip();
            assert_eq!(stat.predictions.len(), preds.len());

            // The static report's histogram is indexed by depth−1; the
            // scenario harness (LatencyStats) indexes by depth.
            let mut report_hist = vec![0u64; 1];
            report_hist.extend(stat.report.depth_histogram.iter().map(|&c| c as u64));
            let stream_hist = depth_histogram(&depths);

            if !matches!(cfg.nap, NapMode::Distance { .. }) {
                assert_eq!(
                    stat.predictions, preds,
                    "[{}] {:?}: predictions must be bit-equal",
                    spec.name, cfg.nap
                );
                assert_eq!(stat.depths, depths, "[{}] {:?}", spec.name, cfg.nap);
                assert_eq!(report_hist, stream_hist, "[{}] {:?}", spec.name, cfg.nap);
                continue;
            }

            // Distance mode: allow rare threshold flips, each with the
            // depth-flip signature; histograms then differ by at most
            // one move per flipped node.
            distance_runs += 1;
            let mut flips = 0usize;
            for i in 0..preds.len() {
                if stat.predictions[i] == preds[i] && stat.depths[i] == depths[i] {
                    continue;
                }
                assert_ne!(
                    stat.depths[i], depths[i],
                    "[{}] node {i} disagrees without a depth flip",
                    spec.name
                );
                flips += 1;
            }
            let budget = preds.len().div_ceil(50); // ≤ 2%
            assert!(
                flips <= budget,
                "[{}] {flips} threshold flips out of {} (budget {budget})",
                spec.name,
                preds.len()
            );
            let l1: u64 = report_hist
                .iter()
                .zip(&stream_hist)
                .map(|(&a, &b)| a.abs_diff(b))
                .sum();
            assert!(
                l1 as usize <= 2 * flips,
                "[{}] histogram drift {l1} exceeds flip budget: {report_hist:?} vs {stream_hist:?}",
                spec.name
            );
        }
    }
    assert!(
        distance_runs >= 2,
        "the matrix must keep ≥ 2 connected topologies so distance-mode \
         agreement is actually exercised (got {distance_runs})"
    );
}
