//! Generalization across base models (the Tables IX–XI property): the NAI
//! framework must wrap SGC, SIGN, S²GC and GAMLP uniformly.

use nai::datasets::{load, DatasetId, Scale};
use nai::prelude::*;

fn run_for(kind: ModelKind) -> (f64, f64, f64) {
    let ds = load(DatasetId::FlickrProxy, Scale::Test);
    let cfg = PipelineConfig {
        k: 3,
        hidden: vec![32],
        epochs: 45,
        patience: 10,
        distill: nai::core::config::DistillConfig {
            epochs: 12,
            ensemble_r: 2,
            ..Default::default()
        },
        ..PipelineConfig::default()
    };
    let trained = NaiPipeline::new(kind, cfg).train(&ds.graph, &ds.split, false);
    let vanilla =
        trained
            .engine
            .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(3));
    // Pick T_s on the validation set, as the paper's protocol prescribes.
    let ts = [0.5f32, 1.0, 2.0, 4.0]
        .into_iter()
        .max_by(|&a, &b| {
            let acc = |ts| {
                trained
                    .engine
                    .infer(
                        &ds.split.val,
                        &ds.graph.labels,
                        &InferenceConfig::distance(ts, 1, 3),
                    )
                    .report
                    .accuracy
            };
            acc(a).partial_cmp(&acc(b)).unwrap()
        })
        .unwrap();
    let nai = trained.engine.infer(
        &ds.split.test,
        &ds.graph.labels,
        &InferenceConfig::distance(ts, 1, 3),
    );
    (
        vanilla.report.accuracy,
        nai.report.accuracy,
        nai.report.macs.feature_processing() as f64
            / vanilla.report.macs.feature_processing().max(1) as f64,
    )
}

// Tolerances: at Test-proxy scale the validation set has ~125 nodes, so
// the val-selected T_s can be one notch off the test-optimal one (the paper
// tunes on 22k–39k val nodes). 0.12 accuracy slack and 5% FP slack (the NAP
// distance checks themselves cost `f` MACs per node per depth) absorb that
// noise while still catching real integration breakage.
const ACC_SLACK: f64 = 0.12;
const FP_SLACK: f64 = 1.05;

#[test]
fn sgc_wraps_cleanly() {
    let (vanilla, nai, fp_ratio) = run_for(ModelKind::Sgc);
    assert!(vanilla > 0.3, "vanilla {vanilla}");
    assert!(nai > vanilla - ACC_SLACK, "nai {nai} vs vanilla {vanilla}");
    assert!(fp_ratio <= FP_SLACK, "fp ratio {fp_ratio}");
}

#[test]
fn sign_wraps_cleanly() {
    let (vanilla, nai, fp_ratio) = run_for(ModelKind::Sign);
    assert!(vanilla > 0.3, "vanilla {vanilla}");
    assert!(nai > vanilla - ACC_SLACK, "nai {nai} vs vanilla {vanilla}");
    assert!(fp_ratio <= FP_SLACK, "fp ratio {fp_ratio}");
}

#[test]
fn s2gc_wraps_cleanly() {
    let (vanilla, nai, fp_ratio) = run_for(ModelKind::S2gc);
    assert!(vanilla > 0.3, "vanilla {vanilla}");
    assert!(nai > vanilla - ACC_SLACK, "nai {nai} vs vanilla {vanilla}");
    assert!(fp_ratio <= FP_SLACK, "fp ratio {fp_ratio}");
}

#[test]
fn gamlp_wraps_cleanly() {
    let (vanilla, nai, fp_ratio) = run_for(ModelKind::Gamlp);
    assert!(vanilla > 0.3, "vanilla {vanilla}");
    assert!(nai > vanilla - ACC_SLACK, "nai {nai} vs vanilla {vanilla}");
    assert!(fp_ratio <= FP_SLACK, "fp ratio {fp_ratio}");
}

#[test]
fn classifier_input_dims_differ_by_model() {
    // SIGN's concat classifier grows with depth; SGC's does not — the
    // structural difference behind Table I's complexity rows.
    let ds = load(DatasetId::FlickrProxy, Scale::Test);
    let f = ds.graph.feature_dim();
    let make = |kind| {
        let cfg = PipelineConfig {
            k: 2,
            hidden: vec![],
            epochs: 5,
            use_single_scale: false,
            use_multi_scale: false,
            ..PipelineConfig::default()
        };
        NaiPipeline::new(kind, cfg).train(&ds.graph, &ds.split, false)
    };
    let sgc = make(ModelKind::Sgc);
    let sign = make(ModelKind::Sign);
    assert_eq!(sgc.engine.classifier(2).mlp.in_dim(), f);
    assert_eq!(sign.engine.classifier(2).mlp.in_dim(), 3 * f);
    assert!(sign.engine.classifier(2).macs_per_node() > sgc.engine.classifier(2).macs_per_node());
}
